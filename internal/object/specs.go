package object

import (
	"sort"
	"strconv"
	"strings"
)

// Operation encodings shared by the replicas and the checker. Updates and
// queries are strings so one Spec serves both sides:
//
//	register:    "write:<v>"          / "read"
//	counter:     "add:<k>"            / "get"
//	grow-set:    "insert:<x>"         / "has:<x>", "size"
//	max-register:"raise:<k>"          / "get"

// Register is the paper's own object as a Spec, for cross-validation with
// the specialized §6 implementation.
type Register struct{}

// Name implements Spec.
func (Register) Name() string { return "register" }

// Init implements Spec.
func (Register) Init() string { return "v0" }

// Apply implements Spec.
func (Register) Apply(state, op string) (string, string) {
	if v, ok := strings.CutPrefix(op, "write:"); ok {
		return v, ""
	}
	if op == "read" {
		return state, state
	}
	return state, "bad-op:" + op
}

// Counter is an add/get counter.
type Counter struct{}

// Name implements Spec.
func (Counter) Name() string { return "counter" }

// Init implements Spec.
func (Counter) Init() string { return "0" }

// Apply implements Spec.
func (Counter) Apply(state, op string) (string, string) {
	cur, err := strconv.Atoi(state)
	if err != nil {
		return state, "bad-state"
	}
	if ks, ok := strings.CutPrefix(op, "add:"); ok {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return state, "bad-op:" + op
		}
		return strconv.Itoa(cur + k), ""
	}
	if op == "get" {
		return state, state
	}
	return state, "bad-op:" + op
}

// GSet is a grow-only set with insert/has/size.
type GSet struct{}

// Name implements Spec.
func (GSet) Name() string { return "gset" }

// Init implements Spec.
func (GSet) Init() string { return "" }

func gsetElems(state string) []string {
	if state == "" {
		return nil
	}
	return strings.Split(state, ",")
}

// Apply implements Spec.
func (GSet) Apply(state, op string) (string, string) {
	elems := gsetElems(state)
	if x, ok := strings.CutPrefix(op, "insert:"); ok {
		for _, e := range elems {
			if e == x {
				return state, ""
			}
		}
		elems = append(elems, x)
		sort.Strings(elems)
		return strings.Join(elems, ","), ""
	}
	if x, ok := strings.CutPrefix(op, "has:"); ok {
		for _, e := range elems {
			if e == x {
				return state, "true"
			}
		}
		return state, "false"
	}
	if op == "size" {
		return state, strconv.Itoa(len(elems))
	}
	return state, "bad-op:" + op
}

// MaxRegister keeps the maximum of all raised values.
type MaxRegister struct{}

// Name implements Spec.
func (MaxRegister) Name() string { return "maxreg" }

// Init implements Spec.
func (MaxRegister) Init() string { return "0" }

// Apply implements Spec.
func (MaxRegister) Apply(state, op string) (string, string) {
	cur, err := strconv.Atoi(state)
	if err != nil {
		return state, "bad-state"
	}
	if ks, ok := strings.CutPrefix(op, "raise:"); ok {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return state, "bad-op:" + op
		}
		if k > cur {
			return ks, ""
		}
		return state, ""
	}
	if op == "get" {
		return state, state
	}
	return state, "bad-op:" + op
}

// KVStore is a map of independent registers: blind puts and deletes,
// keyed gets — the shape of a replicated configuration store. State is a
// canonical "k=v;k2=v2" encoding with keys sorted.
type KVStore struct{}

// Name implements Spec.
func (KVStore) Name() string { return "kvstore" }

// Init implements Spec.
func (KVStore) Init() string { return "" }

func kvParse(state string) map[string]string {
	m := make(map[string]string)
	if state == "" {
		return m
	}
	for _, pair := range strings.Split(state, ";") {
		if k, v, ok := strings.Cut(pair, "="); ok {
			m[k] = v
		}
	}
	return m
}

func kvEncode(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return strings.Join(parts, ";")
}

// Apply implements Spec.
func (KVStore) Apply(state, op string) (string, string) {
	switch {
	case strings.HasPrefix(op, "put:"):
		kv := strings.TrimPrefix(op, "put:")
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return state, "bad-op:" + op
		}
		m := kvParse(state)
		m[k] = v
		return kvEncode(m), ""
	case strings.HasPrefix(op, "del:"):
		k := strings.TrimPrefix(op, "del:")
		m := kvParse(state)
		delete(m, k)
		return kvEncode(m), ""
	case strings.HasPrefix(op, "get:"):
		k := strings.TrimPrefix(op, "get:")
		if v, ok := kvParse(state)[k]; ok {
			return state, v
		}
		return state, "<nil>"
	case op == "keys":
		m := kvParse(state)
		return state, strconv.Itoa(len(m))
	}
	return state, "bad-op:" + op
}
