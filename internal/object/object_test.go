package object_test

import (
	"testing"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func runObject(t *testing.T, model string, spec func() object.Spec, gen object.OpGen,
	newAlg func(object.Spec, register.Params) *object.Alg, cf clock.Factory,
	eps simtime.Duration, seed int64) []linearize.GOp {
	t.Helper()
	bounds := simtime.NewInterval(1*ms, 3*ms)
	ell := 50 * us
	d2p := bounds.Hi
	if model != "timed" {
		d2p += 2 * eps
	}
	if model == "mmt" {
		d2p += 24 * ell
	}
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: d2p, Epsilon: eps}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: seed, Clocks: cf, Ell: ell}
	var net *core.Net
	switch model {
	case "timed":
		net = core.BuildTimed(cfg, object.Factory(newAlg, spec, p))
	case "clock":
		net = core.BuildClocked(cfg, object.Factory(newAlg, spec, p))
	case "mmt":
		net = core.BuildMMT(cfg, object.Factory(newAlg, spec, p))
	}
	clients := object.Attach(net, object.ClientConfig{
		Ops:     20,
		Think:   simtime.NewInterval(0, 2*ms),
		Gen:     gen,
		Seed:    seed,
		Stagger: 300 * us,
	})
	done := func() bool {
		for _, c := range clients {
			if c.Done != 20 {
				return false
			}
		}
		return true
	}
	for net.Sys.Now() < simtime.Time(30*simtime.Second) && !done() {
		if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
			t.Fatal(err)
		}
	}
	if !done() {
		t.Fatal("clients did not finish")
	}
	ops, err := object.History(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	return ops
}

func specOf[T object.Spec](v T) func() object.Spec {
	return func() object.Spec { return v }
}

func TestObjectsLinearizableAcrossModels(t *testing.T) {
	eps := 400 * us
	cases := []struct {
		name string
		spec func() object.Spec
		gen  object.OpGen
	}{
		{"counter", specOf(object.Counter{}), object.CounterOps(0.5)},
		{"gset", specOf(object.GSet{}), object.GSetOps(0.5)},
		{"maxreg", specOf(object.MaxRegister{}), object.MaxOps(0.5)},
		{"register", specOf(object.Register{}), object.RegisterOps(0.4)},
	}
	for _, model := range []string{"timed", "clock", "mmt"} {
		for _, c := range cases {
			c := c
			model := model
			t.Run(model+"/"+c.name, func(t *testing.T) {
				t.Parallel()
				cf := clock.DriftFactory(eps, 17)
				if model == "timed" {
					cf = clock.PerfectFactory()
				}
				ops := runObject(t, model, c.spec, c.gen, object.NewS, cf, eps, 7)
				r := linearize.CheckObject(ops, c.spec(), linearize.Options{Initial: c.spec().Init()})
				if !r.OK {
					t.Fatalf("%s in %s not linearizable: %s", c.name, model, r.Reason)
				}
			})
		}
	}
}

func TestObjectsUnderMaxSkew(t *testing.T) {
	eps := 700 * us
	for _, c := range []struct {
		name string
		spec func() object.Spec
		gen  object.OpGen
	}{
		{"counter", specOf(object.Counter{}), object.CounterOps(0.6)},
		{"gset", specOf(object.GSet{}), object.GSetOps(0.6)},
	} {
		ops := runObject(t, "clock", c.spec, c.gen, object.NewS, clock.SpreadFactory(eps), eps, 3)
		r := linearize.CheckObject(ops, c.spec(), linearize.Options{Initial: c.spec().Init()})
		if !r.OK {
			t.Fatalf("%s under max skew not linearizable: %s", c.name, r.Reason)
		}
	}
}

// The L variant (no 2ε query wait) must break in the clock model — the
// generalized form of the §6.2 observation.
func TestObjectLViolatesInClockModel(t *testing.T) {
	eps := 1 * ms
	violated := false
	for seed := int64(0); seed < 12 && !violated; seed++ {
		bounds := simtime.NewInterval(200*us, 400*us)
		p := register.Params{C: 0, Delta: 5 * us, D2: bounds.Hi + 2*eps, Epsilon: 0}
		cfg := core.Config{N: 3, Bounds: bounds, Seed: seed, Clocks: clock.SpreadFactory(eps)}
		net := core.BuildClocked(cfg, object.Factory(object.NewL, specOf(object.Counter{}), p))
		clients := object.Attach(net, object.ClientConfig{
			Ops:     40,
			Think:   simtime.NewInterval(0, 600*us),
			Gen:     object.CounterOps(0.4),
			Seed:    seed * 131,
			Stagger: 100 * us,
		})
		if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
			t.Fatal(err)
		}
		for _, c := range clients {
			if c.Done != 40 {
				t.Fatalf("%s: %d/40", c.Name(), c.Done)
			}
		}
		ops, err := object.History(net.Sys.Trace().Visible())
		if err != nil {
			t.Fatal(err)
		}
		if r := linearize.CheckObject(ops, object.Counter{}, linearize.Options{Initial: "0"}); !r.OK {
			violated = true
		}
	}
	if !violated {
		t.Fatal("generalized L never violated linearizability in the clock model")
	}
}

func TestSpecSemantics(t *testing.T) {
	// Counter.
	var cnt object.Counter
	s, r := cnt.Apply("0", "add:3")
	if s != "3" || r != "" {
		t.Errorf("add: %q %q", s, r)
	}
	s, r = cnt.Apply("3", "get")
	if s != "3" || r != "3" {
		t.Errorf("get: %q %q", s, r)
	}
	if _, r = cnt.Apply("3", "nope"); r == "" {
		t.Error("bad op accepted")
	}
	if _, r = cnt.Apply("x", "get"); r != "bad-state" {
		t.Error("bad state accepted")
	}

	// GSet.
	var gs object.GSet
	s, _ = gs.Apply("", "insert:b")
	s, _ = gs.Apply(s, "insert:a")
	if s != "a,b" {
		t.Errorf("set state %q", s)
	}
	s2, _ := gs.Apply(s, "insert:a") // idempotent
	if s2 != s {
		t.Error("re-insert changed state")
	}
	if _, r = gs.Apply(s, "has:a"); r != "true" {
		t.Errorf("has:a = %q", r)
	}
	if _, r = gs.Apply(s, "has:z"); r != "false" {
		t.Errorf("has:z = %q", r)
	}
	if _, r = gs.Apply(s, "size"); r != "2" {
		t.Errorf("size = %q", r)
	}

	// MaxRegister.
	var mx object.MaxRegister
	s, _ = mx.Apply("0", "raise:5")
	s, _ = mx.Apply(s, "raise:3")
	if s != "5" {
		t.Errorf("max state %q", s)
	}
	if _, r = mx.Apply(s, "get"); r != "5" {
		t.Errorf("max get %q", r)
	}

	// Register.
	var rg object.Register
	s, _ = rg.Apply("v0", "write:a")
	if s != "a" {
		t.Errorf("register state %q", s)
	}
	if _, r = rg.Apply(s, "read"); r != "a" {
		t.Errorf("register read %q", r)
	}
}

func TestHistoryAlternation(t *testing.T) {
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 0, Delta: 10 * us, D2: bounds.Hi, Epsilon: 0}
	net := core.BuildTimed(core.Config{N: 1, Bounds: bounds, Seed: 1},
		object.Factory(object.NewS, specOf(object.Counter{}), p))
	net.Invoke(0, object.ActQuery, "get")
	net.Invoke(0, object.ActQuery, "get")
	_ = net.Sys.Run(simtime.Time(10 * ms))
	if _, err := object.History(net.Sys.Trace().Visible()); err == nil {
		t.Fatal("alternation violation undetected")
	}
}

func TestKVStoreSpecSemantics(t *testing.T) {
	var kv object.KVStore
	s, r := kv.Apply("", "put:a=1")
	if s != "a=1" || r != "" {
		t.Errorf("put: %q %q", s, r)
	}
	s, _ = kv.Apply(s, "put:b=2")
	if s != "a=1;b=2" {
		t.Errorf("state %q", s)
	}
	if _, r = kv.Apply(s, "get:a"); r != "1" {
		t.Errorf("get:a = %q", r)
	}
	if _, r = kv.Apply(s, "get:z"); r != "<nil>" {
		t.Errorf("get:z = %q", r)
	}
	if _, r = kv.Apply(s, "keys"); r != "2" {
		t.Errorf("keys = %q", r)
	}
	s, _ = kv.Apply(s, "del:a")
	if s != "b=2" {
		t.Errorf("after del %q", s)
	}
	s, _ = kv.Apply(s, "put:b=3") // overwrite
	if s != "b=3" {
		t.Errorf("after overwrite %q", s)
	}
	if _, r = kv.Apply(s, "put:malformed"); r == "" {
		t.Error("malformed put accepted")
	}
	if _, r = kv.Apply(s, "nonsense"); r == "" {
		t.Error("bad op accepted")
	}
}

func TestKVStoreEndToEnd(t *testing.T) {
	eps := 500 * us
	ops := runObject(t, "clock", specOf(object.KVStore{}), object.KVOps(0.5, 3),
		object.NewS, clock.SpreadFactory(eps), eps, 21)
	r := linearize.CheckObject(ops, object.KVStore{}, linearize.Options{Initial: ""})
	if !r.OK {
		t.Fatalf("KV store not linearizable: %s", r.Reason)
	}
}
