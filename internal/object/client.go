package object

import (
	"fmt"
	"math/rand"

	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// OpGen produces a client's next operation: the encoded op string and
// whether it is a blind update (vs a read-only query). Generators must
// keep updates unique per execution where the spec requires it (the
// register's unique-writes assumption); counters and sets need no
// uniqueness.
type OpGen func(r *rand.Rand, node ta.NodeID, seq int) (op string, isUpdate bool)

// RegisterOps writes unique values and reads, with the given write ratio.
func RegisterOps(writeRatio float64) OpGen {
	return func(r *rand.Rand, node ta.NodeID, seq int) (string, bool) {
		if r.Float64() < writeRatio {
			return fmt.Sprintf("write:%v.%d", node, seq), true
		}
		return "read", false
	}
}

// CounterOps adds small increments and gets.
func CounterOps(updateRatio float64) OpGen {
	return func(r *rand.Rand, node ta.NodeID, seq int) (string, bool) {
		if r.Float64() < updateRatio {
			return fmt.Sprintf("add:%d", 1+r.Intn(9)), true
		}
		return "get", false
	}
}

// GSetOps inserts node-tagged elements and queries membership of recently
// inserted ones (and occasionally the size).
func GSetOps(updateRatio float64) OpGen {
	return func(r *rand.Rand, node ta.NodeID, seq int) (string, bool) {
		if r.Float64() < updateRatio {
			return fmt.Sprintf("insert:%v-%d", node, seq), true
		}
		if r.Intn(4) == 0 {
			return "size", false
		}
		probe := r.Intn(seq + 1)
		return fmt.Sprintf("has:%v-%d", node, probe), false
	}
}

// MaxOps raises random values and gets the maximum.
func MaxOps(updateRatio float64) OpGen {
	return func(r *rand.Rand, node ta.NodeID, seq int) (string, bool) {
		if r.Float64() < updateRatio {
			return fmt.Sprintf("raise:%d", r.Intn(1000)), true
		}
		return "get", false
	}
}

// ClientConfig describes an object client population.
type ClientConfig struct {
	// Ops is the number of operations per client.
	Ops int
	// Think is the gap range between response and next invocation.
	Think simtime.Interval
	// Gen produces operations.
	Gen OpGen
	// Seed derives per-client randomness.
	Seed int64
	// Stagger delays client i's first invocation by i·Stagger.
	Stagger simtime.Duration
}

// Client is a closed-loop client issuing generic object operations.
type Client struct {
	name string
	node ta.NodeID
	cfg  ClientConfig
	rng  *rand.Rand

	nextAt    simtime.Time
	waiting   bool
	remaining int
	seq       int

	// Done counts completed operations.
	Done int
}

var _ ta.Automaton = (*Client)(nil)

// NewClient returns an object client for the given node.
func NewClient(node ta.NodeID, cfg ClientConfig) *Client {
	return &Client{
		name:      fmt.Sprintf("oclient(%v)", node),
		node:      node,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed*499979 + int64(node))),
		remaining: cfg.Ops,
	}
}

// Attach adds one object client per node.
func Attach(net *core.Net, cfg ClientConfig) []*Client {
	clients := make([]*Client, 0, net.N)
	for i := 0; i < net.N; i++ {
		c := NewClient(ta.NodeID(i), cfg)
		net.AddClient(c, ta.NodeID(i))
		clients = append(clients, c)
	}
	return clients
}

// Name implements ta.Automaton.
func (c *Client) Name() string { return c.name }

// Init implements ta.Automaton.
func (c *Client) Init() []ta.Action {
	c.nextAt = simtime.Zero.Add(simtime.Duration(c.node) * c.cfg.Stagger)
	return nil
}

// Deliver implements ta.Automaton.
func (c *Client) Deliver(now simtime.Time, a ta.Action) []ta.Action {
	if a.Node != c.node || (a.Name != ActReturn && a.Name != ActAck) || !c.waiting {
		return nil
	}
	c.waiting = false
	c.Done++
	gap := c.cfg.Think.Lo
	if w := int64(c.cfg.Think.Width()); w > 0 {
		gap += simtime.Duration(c.rng.Int63n(w + 1))
	}
	c.nextAt = now.Add(gap)
	return nil
}

// Due implements ta.Automaton.
func (c *Client) Due(simtime.Time) (simtime.Time, bool) {
	if c.waiting || c.remaining == 0 {
		return 0, false
	}
	return c.nextAt, true
}

// Fire implements ta.Automaton.
func (c *Client) Fire(now simtime.Time) []ta.Action {
	if c.waiting || c.remaining == 0 || now.Before(c.nextAt) {
		return nil
	}
	c.waiting = true
	c.remaining--
	op, isUpdate := c.cfg.Gen(c.rng, c.node, c.seq)
	c.seq++
	name := ActQuery
	if isUpdate {
		name = ActUpdate
	}
	return []ta.Action{{Name: name, Node: c.node, Peer: ta.NoNode, Kind: ta.KindInput, Payload: op}}
}

// KVOps generates configuration-store traffic over a small key space:
// puts and deletes versus keyed gets. Values are node-tagged and unique.
func KVOps(updateRatio float64, keys int) OpGen {
	if keys < 1 {
		keys = 1
	}
	return func(r *rand.Rand, node ta.NodeID, seq int) (string, bool) {
		k := fmt.Sprintf("k%d", r.Intn(keys))
		if r.Float64() < updateRatio {
			if r.Intn(8) == 0 {
				return "del:" + k, true
			}
			return fmt.Sprintf("put:%s=%v.%d", k, node, seq), true
		}
		if r.Intn(10) == 0 {
			return "keys", false
		}
		return "get:" + k, false
	}
}
