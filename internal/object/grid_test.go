package object_test

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
)

// TestObjectRandomizedGrid fuzzes the generalized-object stack: random
// spec, model, ε, delays, and workload mix, always expecting
// linearizability against the sequential specification.
func TestObjectRandomizedGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid is several seconds; skipped with -short")
	}
	specs := []struct {
		spec object.Spec
		gen  func(float64) object.OpGen
	}{
		{object.Counter{}, object.CounterOps},
		{object.GSet{}, object.GSetOps},
		{object.MaxRegister{}, object.MaxOps},
		{object.KVStore{}, func(ratio float64) object.OpGen { return object.KVOps(ratio, 3) }},
	}
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(int64(trial)*104729 + 11))
			sc := specs[r.Intn(len(specs))]
			model := "clock"
			if r.Intn(3) == 0 {
				model = "mmt"
			}
			n := 2 + r.Intn(3)
			eps := simtime.Duration(r.Int63n(int64(800*us))) + 10*us
			d1 := simtime.Duration(r.Int63n(int64(ms)))
			d2 := d1 + 500*us + simtime.Duration(r.Int63n(int64(2*ms)))
			ell := 50 * us
			d2p := d2 + 2*eps
			if model == "mmt" {
				d2p += 24 * ell
			}
			p := register.Params{C: 300 * us, Delta: 5 * us, D2: d2p, Epsilon: eps}
			cfg := core.Config{
				N: n, Bounds: simtime.NewInterval(d1, d2), Seed: int64(trial),
				Clocks: clock.DriftFactory(eps, int64(trial)*3), Ell: ell,
			}
			factory := object.Factory(object.NewS, func() object.Spec { return sc.spec }, p)
			var net *core.Net
			if model == "clock" {
				net = core.BuildClocked(cfg, factory)
			} else {
				net = core.BuildMMT(cfg, factory)
			}
			clients := object.Attach(net, object.ClientConfig{
				Ops:     10,
				Think:   simtime.NewInterval(0, 2*ms),
				Gen:     sc.gen(0.3 + 0.4*r.Float64()),
				Seed:    int64(trial) * 17,
				Stagger: 200 * us,
			})
			done := func() bool {
				for _, c := range clients {
					if c.Done != 10 {
						return false
					}
				}
				return true
			}
			for net.Sys.Now() < simtime.Time(30*simtime.Second) && !done() {
				if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
					t.Fatal(err)
				}
			}
			if !done() {
				t.Fatalf("clients did not finish (%s/%s)", sc.spec.Name(), model)
			}
			ops, err := object.History(net.Sys.Trace().Visible())
			if err != nil {
				t.Fatal(err)
			}
			res := linearize.CheckObject(ops, sc.spec, linearize.Options{Initial: sc.spec.Init()})
			if !res.OK {
				t.Fatalf("%s in %s not linearizable (n=%d ε=%v d=[%v,%v]): %s",
					sc.spec.Name(), model, n, eps, d1, d2, res.Reason)
			}
		})
	}
}
