package spec

import (
	"fmt"

	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Adversary is one resolution of the models' nondeterminism: the clock
// behavior within the ±ε band, the message delays within [d1,d2], and the
// MMT step times within (0,ℓ]. "D solves P" quantifies over all of them;
// the harness samples an ensemble with the boundary cases included, since
// that is where the paper's bounds are tight.
type Adversary struct {
	Name   string
	Clocks clock.Factory
	Delays func() channel.DelayPolicy
	Steps  func() core.StepPolicy
}

// StandardAdversaries returns the ensemble used across the experiments:
// the clock boundary cases (max skew, sawtooth jumps), seeded drift, and
// the delay boundary cases (all-min, all-max, maximal reordering), plus a
// uniform sample.
func StandardAdversaries(eps simtime.Duration, seed int64) []Adversary {
	clocks := []struct {
		name string
		f    clock.Factory
	}{
		{"perfect", clock.PerfectFactory()},
		{"spread", clock.SpreadFactory(eps)},
		{"drift", clock.DriftFactory(eps, seed)},
		{"sawtooth", clock.SawtoothFactory(eps, 8*eps+simtime.Millisecond)},
	}
	delays := []struct {
		name string
		f    func() channel.DelayPolicy
	}{
		{"min", channel.MinDelay},
		{"max", channel.MaxDelay},
		{"spread", channel.SpreadDelay},
		{"uniform", channel.UniformDelay},
	}
	out := make([]Adversary, 0, len(clocks)*len(delays))
	for _, c := range clocks {
		for _, d := range delays {
			out = append(out, Adversary{
				Name:   c.name + "/" + d.name,
				Clocks: c.f,
				Delays: d.f,
				Steps:  core.LazySteps,
			})
		}
	}
	return out
}

// Verdict is the outcome of checking one adversary's execution.
type Verdict struct {
	Adversary string
	OK        bool
	Reason    string
}

// String implements fmt.Stringer.
func (v Verdict) String() string {
	if v.OK {
		return fmt.Sprintf("%s: ok", v.Adversary)
	}
	return fmt.Sprintf("%s: FAIL (%s)", v.Adversary, v.Reason)
}

// Solves checks a system family against a problem over an adversary
// ensemble: for each adversary, build drives an execution and returns its
// visible trace, and the problem decides membership. It returns one
// verdict per adversary; AllOK summarizes.
func Solves(p Problem, advs []Adversary, build func(Adversary) (ta.Trace, error)) []Verdict {
	out := make([]Verdict, 0, len(advs))
	for _, adv := range advs {
		tr, err := build(adv)
		if err != nil {
			out = append(out, Verdict{Adversary: adv.Name, OK: false, Reason: err.Error()})
			continue
		}
		ok, reason := p.Holds(tr)
		out = append(out, Verdict{Adversary: adv.Name, OK: ok, Reason: reason})
	}
	return out
}

// SolvesEps is Solves for the relaxed problem P_ε (Definition 2.11): what
// Theorem 4.7 guarantees for a transformed system.
func SolvesEps(p Problem, eps simtime.Duration, advs []Adversary, build func(Adversary) (ta.Trace, error)) []Verdict {
	out := make([]Verdict, 0, len(advs))
	for _, adv := range advs {
		tr, err := build(adv)
		if err != nil {
			out = append(out, Verdict{Adversary: adv.Name, OK: false, Reason: err.Error()})
			continue
		}
		ok, reason := p.HoldsEps(tr, eps)
		out = append(out, Verdict{Adversary: adv.Name, OK: ok, Reason: reason})
	}
	return out
}

// AllOK reports whether every verdict passed, and the first failure.
func AllOK(vs []Verdict) (bool, string) {
	for _, v := range vs {
		if !v.OK {
			return false, v.String()
		}
	}
	return true, ""
}
