// Package spec makes the paper's notion of a *problem* (Definition 2.10:
// a set of admissible timed traces over an external signature) and of
// *solving* a problem first-class: a Problem decides membership of a
// recorded visible trace in tseq(P), and the Solves harness checks a
// system against a problem over an ensemble of adversaries — the
// executable counterpart of "t-traces(D) ⊆ tseq(P)".
//
// The relaxations of Definitions 2.11 and 2.12 are part of the interface:
// HoldsEps decides membership in P_ε (some ≤ε perturbation of the trace is
// in P), which is what Theorem 4.7 guarantees for transformed systems.
package spec

import (
	"fmt"
	"sort"

	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Problem is an executable problem specification.
type Problem interface {
	// Name identifies the problem.
	Name() string
	// Holds decides whether the visible trace is in tseq(P); on failure
	// the string explains why.
	Holds(tr ta.Trace) (bool, string)
	// HoldsEps decides membership in tseq(P_ε) (Definition 2.11).
	HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string)
}

// Linearizable is the register problem P of §6.1: traces that respect the
// alternation condition and are linearizable. (Traces in which the
// environment is first to violate alternation are outside our workloads'
// reach, so they are reported as failures here rather than vacuous
// passes.)
type Linearizable struct {
	// Initial is the register's initial value (v0 by default).
	Initial string
}

var _ Problem = Linearizable{}

// Name implements Problem.
func (l Linearizable) Name() string { return "linearizable-register" }

func (l Linearizable) initial() string {
	if l.Initial == "" {
		return register.Initial.String()
	}
	return l.Initial
}

// Holds implements Problem.
func (l Linearizable) Holds(tr ta.Trace) (bool, string) {
	return l.check(tr, 0)
}

// HoldsEps implements Problem.
func (l Linearizable) HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string) {
	return l.check(tr, eps)
}

func (l Linearizable) check(tr ta.Trace, widen simtime.Duration) (bool, string) {
	ops, err := register.History(tr)
	if err != nil {
		return false, err.Error()
	}
	r := linearize.Check(ops, linearize.Options{Initial: l.initial(), Widen: widen})
	return r.OK, r.Reason
}

// SuperLinearizable is the problem Q of §6.2: ε-superlinearizability, the
// strengthening with Q_ε ⊆ P.
type SuperLinearizable struct {
	// Eps is the ε of the property (points ≥ 2ε after invocation).
	Eps simtime.Duration
	// Initial is the register's initial value (v0 by default).
	Initial string
}

var _ Problem = SuperLinearizable{}

// Name implements Problem.
func (s SuperLinearizable) Name() string {
	return fmt.Sprintf("superlinearizable(ε=%v)", s.Eps)
}

// Holds implements Problem.
func (s SuperLinearizable) Holds(tr ta.Trace) (bool, string) {
	return s.check(tr, 0)
}

// HoldsEps implements Problem.
func (s SuperLinearizable) HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string) {
	return s.check(tr, eps)
}

func (s SuperLinearizable) check(tr ta.Trace, widen simtime.Duration) (bool, string) {
	initial := s.Initial
	if initial == "" {
		initial = register.Initial.String()
	}
	ops, err := register.History(tr)
	if err != nil {
		return false, err.Error()
	}
	r := linearize.Check(ops, linearize.Options{Initial: initial, MinAfterInv: 2 * s.Eps, Widen: widen})
	return r.OK, r.Reason
}

// ObjectLinearizable is the generalized-object problem: the history must
// be linearizable with respect to the sequential Spec.
type ObjectLinearizable struct {
	Spec object.Spec
}

var _ Problem = ObjectLinearizable{}

// Name implements Problem.
func (o ObjectLinearizable) Name() string {
	return "linearizable-" + o.Spec.Name()
}

// Holds implements Problem.
func (o ObjectLinearizable) Holds(tr ta.Trace) (bool, string) {
	return o.check(tr, 0)
}

// HoldsEps implements Problem.
func (o ObjectLinearizable) HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string) {
	return o.check(tr, eps)
}

func (o ObjectLinearizable) check(tr ta.Trace, widen simtime.Duration) (bool, string) {
	ops, err := object.History(tr)
	if err != nil {
		return false, err.Error()
	}
	r := linearize.CheckObject(ops, o.Spec, linearize.Options{Initial: o.Spec.Init(), Widen: widen})
	return r.OK, r.Reason
}

// MutualExclusion is the resource problem of the TDMA example: ACQUIRE /
// RELEASE intervals of different nodes must not overlap in real time
// (touching endpoints allowed: handover at an instant is fine). Its P_ε
// relaxation allows each endpoint to move by ε, i.e. overlaps of up to 2ε
// are tolerated — which is exactly why mutual exclusion needs the §7.1
// guarded strengthening rather than Theorem 4.7 alone.
type MutualExclusion struct {
	// Acquire and Release are the action names (defaults "ACQUIRE" and
	// "RELEASE").
	Acquire, Release string
}

var _ Problem = MutualExclusion{}

// Name implements Problem.
func (MutualExclusion) Name() string { return "mutual-exclusion" }

func (m MutualExclusion) names() (string, string) {
	acq, rel := m.Acquire, m.Release
	if acq == "" {
		acq = "ACQUIRE"
	}
	if rel == "" {
		rel = "RELEASE"
	}
	return acq, rel
}

// Holds implements Problem.
func (m MutualExclusion) Holds(tr ta.Trace) (bool, string) {
	n, worst, err := m.Overlaps(tr)
	if err != nil {
		return false, err.Error()
	}
	if n > 0 {
		return false, fmt.Sprintf("%d overlapping holds (worst %v)", n, worst)
	}
	return true, ""
}

// HoldsEps implements Problem: overlaps up to 2ε are within the P_ε
// perturbation budget.
func (m MutualExclusion) HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string) {
	n, worst, err := m.Overlaps(tr)
	if err != nil {
		return false, err.Error()
	}
	if worst > 2*eps {
		return false, fmt.Sprintf("%d overlaps, worst %v > 2ε = %v", n, worst, 2*eps)
	}
	return true, ""
}

// Overlaps counts real-time overlaps between different nodes' holds and
// returns the worst overlap duration.
func (m MutualExclusion) Overlaps(tr ta.Trace) (int, simtime.Duration, error) {
	acqName, relName := m.names()
	type holding struct {
		node     ta.NodeID
		from, to simtime.Time
	}
	open := make(map[ta.NodeID]simtime.Time)
	inOpen := make(map[ta.NodeID]bool)
	var hs []holding
	for _, e := range tr {
		switch e.Action.Name {
		case acqName:
			if inOpen[e.Action.Node] {
				return 0, 0, fmt.Errorf("spec: %v acquired twice", e.Action.Node)
			}
			open[e.Action.Node] = e.At
			inOpen[e.Action.Node] = true
		case relName:
			if !inOpen[e.Action.Node] {
				return 0, 0, fmt.Errorf("spec: %v released without holding", e.Action.Node)
			}
			hs = append(hs, holding{node: e.Action.Node, from: open[e.Action.Node], to: e.At})
			inOpen[e.Action.Node] = false
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].from < hs[j].from })
	count := 0
	var worst simtime.Duration
	for i := 1; i < len(hs); i++ {
		prev, cur := hs[i-1], hs[i]
		if prev.node != cur.node && cur.from.Before(prev.to) {
			count++
			if d := prev.to.Sub(cur.from); d > worst {
				worst = d
			}
		}
	}
	return count, worst, nil
}

// Responsive is a *real-time* problem: every completed read answers
// within ReadBound and every completed write within WriteBound. This is
// exactly the kind of specification the paper's Theorem 4.7 newly covers:
// Lamport [5] and Neiger-Toueg [13] handle only internal specifications
// (P = P_∞), while real-time bounds change under the clock model — the
// transformed system satisfies them only up to the P_ε perturbation,
// which for an operation's duration means a 2ε relaxation (its invocation
// may move ε one way and its response ε the other). Experiment E16
// measures all three facts.
type Responsive struct {
	ReadBound, WriteBound simtime.Duration
}

var _ Problem = Responsive{}

// Name implements Problem.
func (r Responsive) Name() string {
	return fmt.Sprintf("responsive(read≤%v,write≤%v)", r.ReadBound, r.WriteBound)
}

// Holds implements Problem.
func (r Responsive) Holds(tr ta.Trace) (bool, string) {
	return r.check(tr, 0)
}

// HoldsEps implements Problem: each operation's endpoints may move by ε,
// so durations relax by 2ε.
func (r Responsive) HoldsEps(tr ta.Trace, eps simtime.Duration) (bool, string) {
	return r.check(tr, 2*eps)
}

func (r Responsive) check(tr ta.Trace, slack simtime.Duration) (bool, string) {
	ops, err := register.History(tr)
	if err != nil {
		return false, err.Error()
	}
	for _, o := range ops {
		if o.Pending() {
			continue
		}
		d := o.Res.Sub(o.Inv)
		bound := r.WriteBound
		kind := "write"
		if o.Kind == linearize.Read {
			bound, kind = r.ReadBound, "read"
		}
		if d > bound+slack {
			return false, fmt.Sprintf("%s at %v took %v > bound %v (+%v slack)", kind, o.Node, d, bound, slack)
		}
	}
	return true, ""
}
