package spec_test

import (
	"strings"
	"testing"

	"psclock/internal/core"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/spec"
	"psclock/internal/ta"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// buildRegister returns a Solves build function for the transformed S
// register under the given adversary.
func buildRegister(t *testing.T, eps simtime.Duration) func(spec.Adversary) (ta.Trace, error) {
	t.Helper()
	bounds := simtime.NewInterval(1*ms, 3*ms)
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	return func(adv spec.Adversary) (ta.Trace, error) {
		cfg := core.Config{
			N: 3, Bounds: bounds, Seed: 5,
			Clocks: adv.Clocks, NewDelay: adv.Delays, NewStep: adv.Steps,
		}
		net := core.BuildClocked(cfg, register.Factory(register.NewS, p))
		workload.Attach(net, workload.Config{
			Ops: 15, Think: simtime.NewInterval(0, 2*ms), WriteRatio: 0.4, Seed: 2, Stagger: 300 * us,
		})
		if _, err := net.Sys.RunQuiet(simtime.Time(30 * simtime.Second)); err != nil {
			return nil, err
		}
		return net.Sys.Trace().Visible(), nil
	}
}

func TestSolvesRegisterEnsemble(t *testing.T) {
	eps := 400 * us
	advs := spec.StandardAdversaries(eps, 9)
	if len(advs) != 16 {
		t.Fatalf("ensemble size %d", len(advs))
	}
	verdicts := spec.Solves(spec.Linearizable{}, advs, buildRegister(t, eps))
	if ok, first := spec.AllOK(verdicts); !ok {
		t.Fatalf("ensemble failed: %s", first)
	}
	// And the stronger statement of Theorem 4.7 directly: membership in
	// Q_ε for Q = ε-superlinearizability.
	verdicts = spec.SolvesEps(spec.SuperLinearizable{Eps: eps}, eps, advs, buildRegister(t, eps))
	if ok, first := spec.AllOK(verdicts); !ok {
		t.Fatalf("Q_ε ensemble failed: %s", first)
	}
}

func TestSolvesReportsFailures(t *testing.T) {
	// A problem that always fails must produce failing verdicts with the
	// adversary named.
	advs := spec.StandardAdversaries(100*us, 1)[:2]
	verdicts := spec.Solves(spec.Linearizable{}, advs, func(spec.Adversary) (ta.Trace, error) {
		// A malformed trace: a response with no invocation.
		return ta.Trace{{Action: ta.Action{Name: register.ActAck, Node: 0, Kind: ta.KindOutput}, At: 5}}, nil
	})
	ok, first := spec.AllOK(verdicts)
	if ok {
		t.Fatal("malformed trace accepted")
	}
	if !strings.Contains(first, "FAIL") {
		t.Errorf("first = %q", first)
	}
}

func TestSolvesBuildErrors(t *testing.T) {
	advs := spec.StandardAdversaries(100*us, 1)[:1]
	verdicts := spec.Solves(spec.Linearizable{}, advs, func(spec.Adversary) (ta.Trace, error) {
		return nil, errBoom
	})
	if verdicts[0].OK || !strings.Contains(verdicts[0].Reason, "boom") {
		t.Errorf("verdict = %v", verdicts[0])
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }

func TestObjectLinearizableProblem(t *testing.T) {
	good := ta.Trace{
		{Action: ta.Action{Name: object.ActUpdate, Node: 0, Kind: ta.KindInput, Payload: "add:2"}, At: 0},
		{Action: ta.Action{Name: object.ActAck, Node: 0, Kind: ta.KindOutput}, At: 10},
		{Action: ta.Action{Name: object.ActQuery, Node: 1, Kind: ta.KindInput, Payload: "get"}, At: 20},
		{Action: ta.Action{Name: object.ActReturn, Node: 1, Kind: ta.KindOutput, Payload: "2"}, At: 30},
	}
	p := spec.ObjectLinearizable{Spec: object.Counter{}}
	if ok, reason := p.Holds(good); !ok {
		t.Fatalf("good counter trace rejected: %s", reason)
	}
	bad := make(ta.Trace, len(good))
	copy(bad, good)
	bad[3].Action.Payload = "7"
	if ok, _ := p.Holds(bad); ok {
		t.Fatal("bad counter trace accepted")
	}
	// P_ε cannot rescue a wrong value.
	if ok, _ := p.HoldsEps(bad, simtime.Duration(1*ms)); ok {
		t.Fatal("P_ε rescued a wrong value")
	}
	if p.Name() != "linearizable-counter" {
		t.Errorf("name = %q", p.Name())
	}
}

func mutexTrace(overlap simtime.Duration) ta.Trace {
	return ta.Trace{
		{Action: ta.Action{Name: "ACQUIRE", Node: 0, Kind: ta.KindOutput}, At: 0},
		{Action: ta.Action{Name: "RELEASE", Node: 0, Kind: ta.KindOutput}, At: 100},
		{Action: ta.Action{Name: "ACQUIRE", Node: 1, Kind: ta.KindOutput}, At: simtime.Time(100 - int64(overlap))},
		{Action: ta.Action{Name: "RELEASE", Node: 1, Kind: ta.KindOutput}, At: 200},
	}
}

func TestMutualExclusion(t *testing.T) {
	m := spec.MutualExclusion{}
	if ok, _ := m.Holds(mutexTrace(0)); !ok {
		t.Error("touching handover rejected")
	}
	if ok, _ := m.Holds(mutexTrace(10)); ok {
		t.Error("overlap accepted")
	}
	// P_ε tolerates overlaps up to 2ε.
	if ok, _ := m.HoldsEps(mutexTrace(10), 5); !ok {
		t.Error("2ε-overlap rejected under P_ε")
	}
	if ok, _ := m.HoldsEps(mutexTrace(11), 5); ok {
		t.Error(">2ε overlap accepted under P_ε")
	}
}

func TestMutualExclusionMalformed(t *testing.T) {
	m := spec.MutualExclusion{}
	doubleAcq := ta.Trace{
		{Action: ta.Action{Name: "ACQUIRE", Node: 0, Kind: ta.KindOutput}, At: 0},
		{Action: ta.Action{Name: "ACQUIRE", Node: 0, Kind: ta.KindOutput}, At: 5},
	}
	if _, _, err := m.Overlaps(doubleAcq); err == nil {
		t.Error("double acquire accepted")
	}
	orphanRel := ta.Trace{
		{Action: ta.Action{Name: "RELEASE", Node: 0, Kind: ta.KindOutput}, At: 5},
	}
	if _, _, err := m.Overlaps(orphanRel); err == nil {
		t.Error("orphan release accepted")
	}
}

func TestProblemNames(t *testing.T) {
	if (spec.Linearizable{}).Name() == "" {
		t.Error("empty name")
	}
	if !strings.Contains((spec.SuperLinearizable{Eps: ms}).Name(), "1ms") {
		t.Errorf("name = %q", (spec.SuperLinearizable{Eps: ms}).Name())
	}
	if (spec.MutualExclusion{}).Name() == "" {
		t.Error("empty name")
	}
}

func TestVerdictString(t *testing.T) {
	ok := spec.Verdict{Adversary: "a", OK: true}
	if ok.String() != "a: ok" {
		t.Errorf("String = %q", ok.String())
	}
	bad := spec.Verdict{Adversary: "a", OK: false, Reason: "r"}
	if !strings.Contains(bad.String(), "FAIL") {
		t.Errorf("String = %q", bad.String())
	}
}

func TestResponsiveProblem(t *testing.T) {
	mk := func(readDur, writeDur simtime.Duration) ta.Trace {
		return ta.Trace{
			{Action: ta.Action{Name: register.ActRead, Node: 0, Kind: ta.KindInput}, At: 0},
			{Action: ta.Action{Name: register.ActReturn, Node: 0, Kind: ta.KindOutput, Payload: register.Initial}, At: simtime.Time(readDur)},
			{Action: ta.Action{Name: register.ActWrite, Node: 1, Kind: ta.KindInput, Payload: register.Value{Writer: 1, Seq: 0}}, At: 100},
			{Action: ta.Action{Name: register.ActAck, Node: 1, Kind: ta.KindOutput}, At: simtime.Time(100 + int64(writeDur))},
		}
	}
	r := spec.Responsive{ReadBound: 10, WriteBound: 20}
	if ok, _ := r.Holds(mk(10, 20)); !ok {
		t.Error("exact bounds rejected")
	}
	if ok, reason := r.Holds(mk(11, 20)); ok {
		t.Error("slow read accepted")
	} else if reason == "" {
		t.Error("no reason given")
	}
	if ok, _ := r.Holds(mk(10, 21)); ok {
		t.Error("slow write accepted")
	}
	// P_ε: durations relax by 2ε.
	if ok, _ := r.HoldsEps(mk(14, 24), 2); !ok {
		t.Error("bound+2ε rejected under P_ε")
	}
	if ok, _ := r.HoldsEps(mk(15, 20), 2); ok {
		t.Error("bound+2ε+1 accepted under P_ε")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
	// Malformed trace reported.
	bad := ta.Trace{{Action: ta.Action{Name: register.ActAck, Node: 0, Kind: ta.KindOutput}, At: 1}}
	if ok, _ := r.Holds(bad); ok {
		t.Error("malformed trace accepted")
	}
}
