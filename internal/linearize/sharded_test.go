package linearize

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// replaySharded drives a Sharded checker over a single-key history with
// the monitor protocol: Begin at each invocation and Add at each response
// in seq order, with a safe Advance (the minimum invocation still ahead)
// every few operations.
func replaySharded(seq []Op, key string, opt ShardedOptions) *Sharded {
	s := NewSharded(opt)
	suffixMinInv := make([]simtime.Time, len(seq)+1)
	suffixMinInv[len(seq)] = simtime.Never
	for i := len(seq) - 1; i >= 0; i-- {
		suffixMinInv[i] = suffixMinInv[i+1]
		if seq[i].Inv < suffixMinInv[i] {
			suffixMinInv[i] = seq[i].Inv
		}
	}
	for i, op := range seq {
		s.Begin(key, op.Node, op.Inv)
		s.Add(key, op)
		if i%3 == 2 {
			s.Advance(suffixMinInv[i+1])
		}
	}
	return s
}

// TestShardedSingleKeyParity is the sharded/sequential differential on a
// single key: for every worker-pool size, the merged Result is
// byte-identical to the batch checker's — OK, Reason, States, and Pruned.
func TestShardedSingleKeyParity(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 400; trial++ {
		seq := completionOrder(randAlternating(r))
		opt := randOnlineOptions(r)
		if opt.AssumeUnique && validateHistory(seq, opt.Initial) != nil {
			opt.AssumeUnique = false
		}
		want := Check(seq, opt)
		for _, shards := range []int{0, 2, 4} {
			s := replaySharded(seq, "", ShardedOptions{Check: opt, Shards: shards, Queue: 64})
			if got := s.Finish(); got != want {
				t.Fatalf("trial %d shards=%d: sharded %+v != batch %+v\nopts: %+v\n%v",
					trial, shards, got, want, opt, seq)
			}
		}
	}
}

// multiKeyStream builds k independent single-key histories and an
// interleaved command schedule over them.
type multiKeyStream struct {
	keys []string
	seqs map[string][]Op
}

func randMultiKey(r *rand.Rand, k int) multiKeyStream {
	st := multiKeyStream{seqs: make(map[string][]Op)}
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("r%d", i)
		st.keys = append(st.keys, key)
		st.seqs[key] = completionOrder(randAlternating(r))
	}
	return st
}

// drive interleaves the per-key histories round-robin into the checker:
// each key's operations arrive in its own canonical order (the per-shard
// FIFO guarantee the monitor provides), with watermarks in between.
func (st multiKeyStream) drive(c Checker) Result {
	idx := make(map[string]int, len(st.keys))
	for done := false; !done; {
		done = true
		for _, key := range st.keys {
			i := idx[key]
			seq := st.seqs[key]
			if i >= len(seq) {
				continue
			}
			done = false
			c.Begin(key, seq[i].Node, seq[i].Inv)
			c.Add(key, seq[i])
			idx[key] = i + 1
		}
		c.Advance(0) // a stale watermark: exercises the broadcast path only
	}
	return c.Finish()
}

// TestShardedMultiKeyOracle checks the fan-out against the per-key
// oracle: every key's individual Result equals the batch checker over
// that key's history, the merged OK is their conjunction, and the merged
// Reason is the first failing key's reason in key-arrival order,
// verbatim.
func TestShardedMultiKeyOracle(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	for trial := 0; trial < 150; trial++ {
		st := randMultiKey(r, 2+r.Intn(4))
		opt := Options{Initial: "v0"}
		for _, shards := range []int{0, 3} {
			s := NewSharded(ShardedOptions{Check: opt, Shards: shards, Queue: 32})
			merged := st.drive(s)
			wantOK := true
			wantReason := ""
			failKey := ""
			for _, key := range st.keys {
				want := Check(st.seqs[key], opt)
				got, ok := s.KeyResult(key)
				if !ok {
					t.Fatalf("trial %d shards=%d: KeyResult(%q) missing", trial, shards, key)
				}
				if got != want {
					t.Fatalf("trial %d shards=%d key %q: sharded %+v != batch %+v\n%v",
						trial, shards, key, got, want, st.seqs[key])
				}
				if wantOK && !want.OK {
					wantOK, wantReason, failKey = false, want.Reason, key
				}
			}
			if merged.OK != wantOK || merged.Reason != wantReason {
				t.Fatalf("trial %d shards=%d: merged {%v %q} != want {%v %q}",
					trial, shards, merged.OK, merged.Reason, wantOK, wantReason)
			}
			if gotKey, ok := s.FailedKey(); ok != !wantOK || (ok && gotKey != failKey) {
				t.Fatalf("trial %d shards=%d: FailedKey()=(%q,%v), want (%q,%v)",
					trial, shards, gotKey, ok, failKey, !wantOK)
			}
		}
	}
}

// TestShardedDeterminism replays one multi-key stream twice at the same
// shard count: merged and per-key results must be identical — worker
// scheduling must not leak into verdicts.
func TestShardedDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 50; trial++ {
		st := randMultiKey(r, 3)
		opt := Options{Initial: "v0"}
		a := NewSharded(ShardedOptions{Check: opt, Shards: 3, Queue: 16})
		b := NewSharded(ShardedOptions{Check: opt, Shards: 3, Queue: 16})
		ra, rb := st.drive(a), st.drive(b)
		if ra != rb {
			t.Fatalf("trial %d: replays disagree: %+v vs %+v", trial, ra, rb)
		}
		for _, key := range st.keys {
			ka, _ := a.KeyResult(key)
			kb, _ := b.KeyResult(key)
			if ka != kb {
				t.Fatalf("trial %d key %q: replays disagree: %+v vs %+v", trial, key, ka, kb)
			}
		}
	}
}

// TestShardedMergedReasonOrder pins the merge tie-break with two failing
// keys: the merged Reason is the FIRST key's (in first-appearance order),
// regardless of which shard finishes first, and carries the sequential
// checker's exact error text.
func TestShardedMergedReasonOrder(t *testing.T) {
	badA := []Op{
		{Node: 0, Kind: Write, Value: "a1", Inv: 0, Res: 10},
		{Node: 1, Kind: Read, Value: "v0", Inv: 20, Res: 30},
		{Node: 0, Kind: Read, Value: "nope-a", Inv: 40, Res: 50},
	}
	badB := []Op{
		{Node: 2, Kind: Read, Value: "nope-b", Inv: 0, Res: 5},
	}
	opt := Options{Initial: "v0"}
	wantA := Check(badA, opt)
	if wantA.OK {
		t.Fatal("fixture badA unexpectedly linearizable")
	}
	for _, shards := range []int{0, 2, 4} {
		s := NewSharded(ShardedOptions{Check: opt, Shards: shards})
		for _, op := range badA { // key "a" appears first
			s.Begin("a", op.Node, op.Inv)
			s.Add("a", op)
		}
		for _, op := range badB {
			s.Begin("b", op.Node, op.Inv)
			s.Add("b", op)
		}
		merged := s.Finish()
		if merged.OK {
			t.Fatalf("shards=%d: merged verdict OK over two failing keys", shards)
		}
		if merged.Reason != wantA.Reason {
			t.Fatalf("shards=%d: merged reason %q, want first key's %q", shards, merged.Reason, wantA.Reason)
		}
		if key, ok := s.FailedKey(); !ok || key != "a" {
			t.Fatalf("shards=%d: FailedKey()=(%q,%v), want (\"a\",true)", shards, key, ok)
		}
	}
}

// TestRecorderReplayParity pins capture/replay transparency: recording a
// stream and replaying it into a fresh checker yields the same Result as
// driving that checker directly.
func TestRecorderReplayParity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		st := randMultiKey(r, 2)
		opt := Options{Initial: "v0"}
		rec := &Recorder{}
		st.drive(rec)
		direct := st.drive(NewSharded(ShardedOptions{Check: opt}))
		replayed := Replay(rec.Cmds, NewSharded(ShardedOptions{Check: opt}))
		if direct != replayed {
			t.Fatalf("trial %d: direct %+v != replayed %+v", trial, direct, replayed)
		}
	}
}

// TestShardedAfterFinish pins that a finished checker ignores further
// traffic and Finish stays idempotent.
func TestShardedAfterFinish(t *testing.T) {
	s := NewSharded(ShardedOptions{Check: Options{Initial: "v0"}, Shards: 2})
	s.Add("", Op{Node: 0, Kind: Write, Value: "w0", Inv: 0, Res: 1})
	first := s.Finish()
	s.Begin("", ta.NodeID(1), 5)
	s.Add("", Op{Node: 1, Kind: Read, Value: "bogus", Inv: 5, Res: 6})
	s.Advance(100)
	if again := s.Finish(); again != first {
		t.Fatalf("Finish not idempotent: %+v then %+v", first, again)
	}
}
