// Package linearize decides linearizability of read/write register
// histories (§6 of the paper), including the paper's two variants:
//
//   - ε-superlinearizability (§6.2): every operation's linearization point
//     must additionally lie at least 2ε after its invocation;
//   - the P_ε relaxation (Definition 2.11): the history may first be
//     perturbed by moving every event up to ε in time, which for interval
//     placement is equivalent to widening every operation's window by ε on
//     both sides.
//
// The checker assumes unique written values (the §3 uniqueness assumption,
// guaranteed by the workloads), under which linearizability of a register
// history is decidable by a Wing-Gong style search: choose the next
// operation to linearize among those whose window opens before every
// remaining window closes, assign it the earliest feasible point, and
// backtrack on read-value mismatches. Greedy earliest-point assignment is
// safe (an exchange argument: delaying a point never enables an otherwise
// infeasible order), and memoizing on (set of linearized operations, last
// written value) makes the search fast for the bounded-concurrency
// histories the workloads generate.
package linearize

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Read Kind = iota + 1
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Op is one complete register operation: invoked at Inv, responded at Res.
// Value is the value written (writes) or returned (reads), compared as an
// opaque string. A pending operation (no response observed) has
// Res == simtime.Never.
type Op struct {
	Node  ta.NodeID
	Kind  Kind
	Value string
	Inv   simtime.Time
	Res   simtime.Time
}

// Pending reports whether the operation never received its response.
func (o Op) Pending() bool { return o.Res == simtime.Never }

// String implements fmt.Stringer.
func (o Op) String() string {
	return fmt.Sprintf("%v %v(%s) [%v, %v]", o.Node, o.Kind, o.Value, o.Inv, o.Res)
}

// Options tunes the placement constraints.
type Options struct {
	// Initial is the register's initial value (read by reads that precede
	// every write).
	Initial string
	// MinAfterInv forces every linearization point to be at least this far
	// after the operation's invocation: 2ε for the superlinearizability
	// property Q of §6.2, 0 for plain linearizability.
	MinAfterInv simtime.Duration
	// Widen relaxes every operation's window by this much on both sides:
	// ε when checking membership in P_ε (Definition 2.11), 0 otherwise.
	Widen simtime.Duration
	// ShiftFuture additionally allows every window's close to move this
	// much later: δ when checking membership in P^δ (Definition 2.12),
	// where responses may shift into the future.
	ShiftFuture simtime.Duration
	// MaxStates bounds the search; 0 means the default (4 million).
	MaxStates int
}

// Result reports the outcome of a check.
type Result struct {
	// OK reports whether a valid linearization exists.
	OK bool
	// Reason describes the failure when OK is false.
	Reason string
	// States counts search states explored, for diagnostics.
	States int
}

// Check decides whether the history is linearizable under the options.
func Check(ops []Op, opt Options) Result {
	c, err := newChecker(ops, opt)
	if err != nil {
		return Result{OK: false, Reason: err.Error()}
	}
	return c.solve()
}

// CheckLinearizable decides plain linearizability (the problem P of §6.1)
// with the given initial value.
func CheckLinearizable(ops []Op, initial string) Result {
	return Check(ops, Options{Initial: initial})
}

// CheckSuperLinearizable decides ε-superlinearizability (the problem Q of
// §6.2): points at least 2ε after invocation.
func CheckSuperLinearizable(ops []Op, initial string, eps simtime.Duration) Result {
	return Check(ops, Options{Initial: initial, MinAfterInv: 2 * eps})
}

// CheckEps decides membership in P_ε (Definition 2.11) for the
// linearizability problem: some ≤ε perturbation of the history is
// linearizable.
func CheckEps(ops []Op, initial string, eps simtime.Duration) Result {
	return Check(ops, Options{Initial: initial, Widen: eps})
}

// interval is one operation's admissible placement window after applying
// the options.
type interval struct {
	op     Op
	lo, hi simtime.Time
	drop   bool // pending op whose effect was provably never observed
}

type checker struct {
	ivs       []interval
	initial   string
	maxStates int

	states int
	memo   map[string]bool
}

func newChecker(ops []Op, opt Options) (*checker, error) {
	if opt.MaxStates == 0 {
		opt.MaxStates = 4 << 20
	}
	// Uniqueness of written values is a precondition (§3).
	writers := make(map[string]int, len(ops))
	observed := make(map[string]bool, len(ops))
	for i, o := range ops {
		if o.Kind == Write {
			if j, dup := writers[o.Value]; dup {
				return nil, fmt.Errorf("linearize: value %q written twice (ops %d and %d)", o.Value, j, i)
			}
			writers[o.Value] = i
		} else if !o.Pending() {
			// Pending reads returned nothing; only completed reads
			// witness values.
			observed[o.Value] = true
		}
	}
	for v := range observed {
		if _, ok := writers[v]; !ok && v != opt.Initial {
			return nil, fmt.Errorf("linearize: value %q read but never written", v)
		}
	}

	ivs := make([]interval, 0, len(ops))
	for _, o := range ops {
		iv := interval{op: o}
		lo := o.Inv.Add(opt.MinAfterInv)
		if opt.Widen > 0 {
			lo = lo.Add(-opt.Widen)
		}
		if lo < 0 {
			lo = 0
		}
		iv.lo = lo
		switch {
		case o.Pending():
			if o.Kind == Read {
				// A pending read returned nothing; it may simply not have
				// taken effect.
				iv.drop = true
			} else if !observed[o.Value] {
				// A pending write whose value nobody read may not have
				// taken effect either. (If it was observed it must be
				// placeable, with an unbounded window.)
				iv.drop = true
			}
			iv.hi = simtime.Never
		default:
			iv.hi = o.Res.Add(opt.Widen).Add(opt.ShiftFuture)
		}
		if !iv.drop {
			ivs = append(ivs, iv)
		}
	}
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	return &checker{ivs: ivs, initial: opt.Initial, maxStates: opt.MaxStates, memo: make(map[string]bool)}, nil
}

// state: all operations with index < prefix are linearized, plus those in
// extras; last is the last written value.
func stateKey(prefix int, extras []int, last string) string {
	var b strings.Builder
	b.Grow(16 + 4*len(extras) + len(last))
	b.WriteString(strconv.Itoa(prefix))
	for _, e := range extras {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(e))
	}
	b.WriteByte('|')
	b.WriteString(last)
	return b.String()
}

func (c *checker) solve() Result {
	ok, reason := c.dfs(0, nil, c.initial)
	r := Result{OK: ok, States: c.states}
	if !ok {
		if reason == "" {
			reason = "no valid linearization order exists"
		}
		r.Reason = reason
	}
	return r
}

// dfs explores linearization orders. prefix/extras identify the linearized
// set; last is the current register value. The running point lower bound L
// equals the max lo over the linearized set, so it needs no explicit
// tracking: an op placed next gets point max(L, lo), feasible iff that is
// ≤ its hi; since L only matters through comparisons with hi values, it
// suffices to verify hi ≥ lo for candidates and hi ≥ L via the minHi
// candidate rule below.
func (c *checker) dfs(prefix int, extras []int, last string) (bool, string) {
	c.states++
	if c.states > c.maxStates {
		return false, fmt.Sprintf("linearize: state budget (%d) exhausted", c.maxStates)
	}
	// Advance prefix past contiguously linearized ops.
	for len(extras) > 0 && extras[0] == prefix {
		extras = extras[1:]
		prefix++
	}
	if prefix == len(c.ivs) {
		return true, ""
	}
	key := stateKey(prefix, extras, last)
	if done, seen := c.memo[key]; seen {
		return done, ""
	}

	// L = max lo over linearized ops; every remaining op's point will be
	// ≥ L, so any remaining op with hi < L is dead. L is bounded above by
	// lo of any candidate we may still place... we compute L explicitly
	// from the linearized set: it is the max lo among ops < prefix or in
	// extras. Since ivs is sorted by lo, that is the lo of the latest
	// linearized index.
	lastIdx := prefix - 1
	if len(extras) > 0 {
		lastIdx = extras[len(extras)-1]
	}
	var l simtime.Time
	if lastIdx >= 0 {
		l = c.ivs[lastIdx].lo
	}

	// minHi over remaining ops: a candidate whose lo exceeds minHi would
	// strand the minHi op (its point would be forced past its close).
	minHi := simtime.Never
	inExtras := make(map[int]bool, len(extras))
	for _, e := range extras {
		inExtras[e] = true
	}
	for i := prefix; i < len(c.ivs); i++ {
		if inExtras[i] {
			continue
		}
		if c.ivs[i].hi < minHi {
			minHi = c.ivs[i].hi
		}
	}
	if minHi < l {
		c.memo[key] = false
		return false, ""
	}

	for i := prefix; i < len(c.ivs); i++ {
		if inExtras[i] {
			continue
		}
		iv := c.ivs[i]
		if iv.lo > minHi {
			break // sorted by lo: no further candidates
		}
		point := iv.lo.Max(l)
		if point > iv.hi {
			continue
		}
		next := last
		switch iv.op.Kind {
		case Write:
			next = iv.op.Value
		case Read:
			if iv.op.Value != last {
				continue
			}
		}
		newExtras := make([]int, 0, len(extras)+1)
		newExtras = append(newExtras, extras...)
		newExtras = append(newExtras, i)
		sort.Ints(newExtras)
		if ok, reason := c.dfs(prefix, newExtras, next); ok {
			c.memo[key] = true
			return true, ""
		} else if reason != "" {
			return false, reason
		}
	}
	c.memo[key] = false
	return false, ""
}
