// Package linearize decides linearizability of read/write register
// histories (§6 of the paper), including the paper's two variants:
//
//   - ε-superlinearizability (§6.2): every operation's linearization point
//     must additionally lie at least 2ε after its invocation;
//   - the P_ε relaxation (Definition 2.11): the history may first be
//     perturbed by moving every event up to ε in time, which for interval
//     placement is equivalent to widening every operation's window by ε on
//     both sides.
//
// The checker assumes unique written values (the §3 uniqueness assumption,
// guaranteed by the workloads), under which linearizability of a register
// history is decidable by a Wing-Gong style search: choose the next
// operation to linearize among those whose window opens before every
// remaining window closes, assign it the earliest feasible point, and
// backtrack on read-value mismatches. Greedy earliest-point assignment is
// safe (an exchange argument: delaying a point never enables an otherwise
// infeasible order).
//
// The search engine is the *online* frontier checker of online.go, which
// consumes operations as they complete and settles verdict fragments as a
// low-watermark passes each operation's window — O(window) state for
// streaming monitors. The batch functions below replay a history into it,
// so both paths share one engine and return identical Results.
package linearize

import (
	"fmt"
	"strconv"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Read Kind = iota + 1
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Op is one complete register operation: invoked at Inv, responded at Res.
// Value is the value written (writes) or returned (reads), compared as an
// opaque string. A pending operation (no response observed) has
// Res == simtime.Never.
type Op struct {
	Node  ta.NodeID
	Kind  Kind
	Value string
	Inv   simtime.Time
	Res   simtime.Time
}

// Pending reports whether the operation never received its response.
func (o Op) Pending() bool { return o.Res == simtime.Never }

// String implements fmt.Stringer.
func (o Op) String() string {
	return fmt.Sprintf("%v %v(%s) [%v, %v]", o.Node, o.Kind, o.Value, o.Inv, o.Res)
}

// Options tunes the placement constraints.
type Options struct {
	// Initial is the register's initial value (read by reads that precede
	// every write).
	Initial string
	// MinAfterInv forces every linearization point to be at least this far
	// after the operation's invocation: 2ε for the superlinearizability
	// property Q of §6.2, 0 for plain linearizability.
	MinAfterInv simtime.Duration
	// Widen relaxes every operation's window by this much on both sides:
	// ε when checking membership in P_ε (Definition 2.11), 0 otherwise.
	Widen simtime.Duration
	// ShiftFuture additionally allows every window's close to move this
	// much later: δ when checking membership in P^δ (Definition 2.12),
	// where responses may shift into the future.
	ShiftFuture simtime.Duration
	// MaxStates bounds the search; 0 means the default (4 million).
	MaxStates int
	// AssumeUnique skips the value-uniqueness bookkeeping (duplicate-write
	// and read-of-unwritten detection), whose state grows with the number
	// of distinct values rather than the concurrency window. Set it only
	// for workloads that guarantee uniqueness by construction (§3), e.g.
	// the long-horizon streaming runs.
	AssumeUnique bool
	// ApproxEps enables the ε-approximate mode (after Bonakdarpour et al.,
	// "Approximate Distributed Monitoring under Partial Synchrony", arXiv
	// 2408.05033): orderings whose only distinction lies inside this band —
	// an operation that could precede a settling deadline only because its
	// window opens within ApproxEps of that deadline — are pruned instead
	// of searched. Pruning never fabricates a witness, so OK still means a
	// real linearization order was found; a failure reached after any prune
	// is only ε-uncertain. Result.Verdict() reports the three-valued
	// outcome. Zero (the default) is the exact checker. Larger values prune
	// more: the precision/cost knob.
	ApproxEps simtime.Duration
	// Yield, when non-nil, is called between settled deadlines inside a
	// drain. Live monitors sharing a core with the system under test set
	// it to runtime.Gosched so a verification burst cannot monopolize the
	// scheduler for tens of milliseconds and turn checker lag into
	// measured timer/delay violations; batch checking leaves it nil. The
	// hook has no effect on the verdict.
	Yield func()
}

// Result reports the outcome of a check.
type Result struct {
	// OK reports whether a valid linearization exists.
	OK bool
	// Reason describes the failure when OK is false.
	Reason string
	// States counts search states explored, for diagnostics.
	States int
	// Pruned counts candidate orderings the ε-approximate mode skipped;
	// always zero for the exact checker (Options.ApproxEps == 0). A found
	// witness is real regardless of Pruned, but a failure with Pruned > 0
	// might have been rescued by a pruned ordering — see Verdict.
	Pruned int
}

// Verdict is the three-valued outcome of an ε-approximate check.
type Verdict int

// The three verdicts. The exact checker (ApproxEps == 0) only ever yields
// the first two.
const (
	// Linearizable: a concrete linearization order was found; the history
	// is definitely linearizable (sound even under pruning — pruning only
	// removes candidate orders, never invents one).
	Linearizable Verdict = iota
	// NotLinearizable: the search failed and nothing was pruned, so the
	// exhaustive search failed: definitely not linearizable.
	NotLinearizable
	// EpsUncertain: the search failed, but orderings inside the ε band
	// were pruned along the way; one of them might have succeeded. The
	// history is not linearizable at the monitor's timing precision, but
	// could be under a sub-ε perturbation.
	EpsUncertain
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Linearizable:
		return "linearizable"
	case NotLinearizable:
		return "not-linearizable"
	case EpsUncertain:
		return "eps-uncertain"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Verdict classifies the result three-valued: definitely linearizable,
// definitely not, or ε-uncertain (failed, but only after the approximate
// mode pruned candidate orderings that might have succeeded).
func (r Result) Verdict() Verdict {
	switch {
	case r.OK:
		return Linearizable
	case r.Pruned > 0:
		return EpsUncertain
	default:
		return NotLinearizable
	}
}

// Check decides whether the history is linearizable under the options. It
// replays the history through the online engine: submit every operation in
// history order, then settle all deadlines at once.
func Check(ops []Op, opt Options) Result {
	o := NewOnline(opt)
	for _, op := range ops {
		o.Add(op)
	}
	return o.Finish()
}

// CheckLinearizable decides plain linearizability (the problem P of §6.1)
// with the given initial value.
func CheckLinearizable(ops []Op, initial string) Result {
	return Check(ops, Options{Initial: initial})
}

// CheckSuperLinearizable decides ε-superlinearizability (the problem Q of
// §6.2): points at least 2ε after invocation.
func CheckSuperLinearizable(ops []Op, initial string, eps simtime.Duration) Result {
	return Check(ops, Options{Initial: initial, MinAfterInv: 2 * eps})
}

// CheckEps decides membership in P_ε (Definition 2.11) for the
// linearizability problem: some ≤ε perturbation of the history is
// linearizable.
func CheckEps(ops []Op, initial string, eps simtime.Duration) Result {
	return Check(ops, Options{Initial: initial, Widen: eps})
}

// validateHistory checks the structural preconditions — unique written
// values and no read of a never-written value — without running the
// search. Shrink uses it to distinguish genuine violation witnesses from
// histories a removal made malformed.
func validateHistory(ops []Op, initial string) error {
	writers := make(map[string]int, len(ops))
	observed := make(map[string]int, len(ops))
	for i, o := range ops {
		if o.Kind == Write {
			if j, dup := writers[o.Value]; dup {
				return fmt.Errorf("linearize: value %q written twice (ops %d and %d)", o.Value, j, i)
			}
			writers[o.Value] = i
		} else if !o.Pending() {
			if _, seen := observed[o.Value]; !seen {
				observed[o.Value] = i
			}
		}
	}
	badID, badVal := -1, ""
	for v, id := range observed {
		if v == initial {
			continue
		}
		if _, ok := writers[v]; ok {
			continue
		}
		if badID < 0 || id < badID {
			badID, badVal = id, v
		}
	}
	if badID >= 0 {
		return fmt.Errorf("linearize: value %q read but never written", badVal)
	}
	return nil
}
