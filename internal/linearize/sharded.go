package linearize

import (
	"runtime"
	"sync"
	"sync/atomic"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements the sharded parallel form of the online checker.
// Register histories are independently linearizable — the paper's systems
// never order operations across registers — so a multi-register stream
// splits by key into per-key Online automata that can run concurrently.
// The Sharded checker routes each key (first-appearance order) round-robin
// to one of a pool of shard workers; the caller stays the single producer,
// hand-off is a lock-free SPSC ring per shard, and the low-watermark
// Flush/Advance broadcast keeps every shard's window GC and verdicts
// deterministic. Each key lives on exactly one shard, so its operations
// are processed in exactly the submission order the caller used — the
// per-key verdict, error text, sticky-failure behaviour, and States count
// are identical to feeding that key's operations to a sequential Online.
// The sequential checker therefore remains the differential oracle
// (cmd/pscfuzz -checkshards exercises exactly this equality).

// Checker is the keyed streaming-checker surface shared by the inline and
// sharded modes; register.Monitor drives it. Calls must come from a single
// goroutine at a time (the exec.Sink contract), with Add in the canonical
// per-key arrival order and Finish called exactly once when the stream
// ends — for the sharded mode Finish is also what terminates the workers,
// so abandoning a Sharded without Finish leaks goroutines.
type Checker interface {
	// Begin declares an in-flight invocation on key, holding that key's
	// processing bound as in Online.Begin.
	Begin(key string, node ta.NodeID, inv simtime.Time)
	// Add submits a completed (or Finish-time pending) operation on key.
	Add(key string, op Op)
	// Advance supplies the global low-watermark: no operation on any key
	// will be invoked before watermark.
	Advance(watermark simtime.Time)
	// Finish settles every key and returns the merged verdict.
	Finish() Result
}

// ShardedOptions configures a Sharded checker.
type ShardedOptions struct {
	// Check is applied to every per-key Online automaton when New is nil.
	Check Options
	// New, when non-nil, constructs the automaton for each key, overriding
	// the default NewOnline(Check). This is the tiered-store hook: route
	// lin-tier keys to Online and seq-tier keys to SeqOnline from one
	// checker, one merged verdict. The factory is called from shard
	// workers (or the caller's goroutine inline) at a key's first
	// operation; it must be safe for concurrent use and each returned
	// automaton is driven by exactly one goroutine.
	New func(key string) Automaton
	// Shards is the worker-pool size. Values below 2 select the inline
	// mode: per-key automata driven directly on the caller's goroutine,
	// with no queues or workers — the plumbing-free baseline.
	Shards int
	// Queue is the per-shard ring capacity, rounded up to a power of two;
	// 0 means 1024. A full ring parks the producer until the shard
	// drains, bounding memory instead of dropping or reordering.
	Queue int
}

// Sharded checks a multi-key stream of register operations by fanning out
// per-key Online automata across a pool of shard workers. See NewSharded.
type Sharded struct {
	opt ShardedOptions

	kidOf map[string]int // key → kid (first-appearance order)
	keys  []string       // kid → key

	inline  []Automaton // kid-indexed automata (inline mode)
	shards  []*shard    // worker pool (sharded mode)
	wg      sync.WaitGroup
	results []Result // kid-indexed, written by workers during Finish

	finished bool
	final    Result
	perKey   []Result
	failKid  int
}

var _ Checker = (*Sharded)(nil)

// shard is one worker: an SPSC ring fed by the producer and a goroutine
// draining it into kid-indexed Online automata.
type shard struct {
	ring *spscRing
}

// Message kinds on the shard rings.
const (
	msgBegin = iota
	msgAdd
	msgAdvance
	msgFinish
)

// shardMsg is one hand-off unit. kid is pre-interned by the producer so
// workers never touch the key table; key rides along only so a worker can
// hand it to the per-key automaton factory on first use.
type shardMsg struct {
	kind int
	kid  int
	key  string
	node ta.NodeID
	t    simtime.Time // Begin invocation or Advance watermark
	op   Op
}

// NewSharded returns a sharded checker; every per-key automaton uses
// opt.Check. With opt.Shards < 2 it runs inline (no goroutines); otherwise
// it starts opt.Shards workers that Finish terminates.
func NewSharded(opt ShardedOptions) *Sharded {
	if opt.Queue <= 0 {
		opt.Queue = 1024
	}
	s := &Sharded{
		opt:     opt,
		kidOf:   make(map[string]int),
		failKid: -1,
	}
	if opt.Shards >= 2 {
		// Workers share the scheduler with whatever produced the stream —
		// in live monitoring, the system under test itself. Yielding
		// between settled deadlines keeps any one drain from monopolizing
		// a core; the inline mode runs on the caller's goroutine, where
		// pacing is the caller's business.
		if s.opt.Check.Yield == nil {
			s.opt.Check.Yield = runtime.Gosched
		}
		s.shards = make([]*shard, opt.Shards)
		for i := range s.shards {
			sh := &shard{ring: newSPSCRing(opt.Queue)}
			s.shards[i] = sh
			s.wg.Add(1)
			go s.worker(sh)
		}
	}
	return s
}

// kid interns key, assigning ids in first-appearance order. Round-robin
// over that order (kid mod Shards) is the routing function: deterministic
// for a fixed stream, and balanced whenever keys carry comparable load.
func (s *Sharded) kid(key string) int {
	if k, ok := s.kidOf[key]; ok {
		return k
	}
	k := len(s.keys)
	s.kidOf[key] = k
	s.keys = append(s.keys, key)
	return k
}

// newAuto constructs the automaton for key: the factory when one is set,
// the default Online otherwise.
func (s *Sharded) newAuto(key string) Automaton {
	if s.opt.New != nil {
		return s.opt.New(key)
	}
	return NewOnline(s.opt.Check)
}

// at returns the automaton for kid in the inline mode, creating it lazily.
func (s *Sharded) at(kid int, key string) Automaton {
	for len(s.inline) <= kid {
		s.inline = append(s.inline, nil)
	}
	if s.inline[kid] == nil {
		s.inline[kid] = s.newAuto(key)
	}
	return s.inline[kid]
}

// Begin implements Checker.
func (s *Sharded) Begin(key string, node ta.NodeID, inv simtime.Time) {
	if s.finished {
		return
	}
	k := s.kid(key)
	if s.shards == nil {
		s.at(k, key).Begin(node, inv)
		return
	}
	s.shards[k%len(s.shards)].ring.push(shardMsg{kind: msgBegin, kid: k, key: key, node: node, t: inv})
}

// Add implements Checker.
func (s *Sharded) Add(key string, op Op) {
	if s.finished {
		return
	}
	k := s.kid(key)
	if s.shards == nil {
		s.at(k, key).Add(op)
		return
	}
	s.shards[k%len(s.shards)].ring.push(shardMsg{kind: msgAdd, kid: k, key: key, op: op})
}

// Advance implements Checker: the watermark is broadcast, so every shard
// garbage-collects its windows against the same bound.
func (s *Sharded) Advance(watermark simtime.Time) {
	if s.finished {
		return
	}
	if s.shards == nil {
		for _, o := range s.inline {
			if o != nil {
				o.Advance(watermark)
			}
		}
		return
	}
	for _, sh := range s.shards {
		sh.ring.push(shardMsg{kind: msgAdvance, t: watermark})
	}
}

// Finish implements Checker: it settles every key (terminating the
// workers in the sharded mode) and merges the per-key Results in key
// arrival order. OK requires every key OK; Reason is the first failing
// key's reason, verbatim — for a single-key stream the merged Result is
// byte-identical to the sequential Online's. States sums all keys' search
// work; Pruned is the failing key's count when failed (so Verdict stays
// sound: another key's prunes cannot excuse this key's definite
// violation) and the sum when OK. Idempotent.
func (s *Sharded) Finish() Result {
	if s.finished {
		return s.final
	}
	s.finished = true
	s.results = make([]Result, len(s.keys))
	if s.shards == nil {
		for k, o := range s.inline {
			if o != nil {
				s.results[k] = o.Finish()
			}
		}
	} else {
		for _, sh := range s.shards {
			sh.ring.push(shardMsg{kind: msgFinish})
		}
		s.wg.Wait()
	}
	s.perKey = s.results
	merged := Result{OK: true}
	for k := range s.results {
		r := &s.results[k]
		merged.States += r.States
		if r.OK {
			merged.Pruned += r.Pruned
			continue
		}
		if merged.OK {
			merged.OK = false
			merged.Reason = r.Reason
			s.failKid = k
		}
	}
	if !merged.OK {
		merged.Pruned = s.results[s.failKid].Pruned
	}
	s.final = merged
	return s.final
}

// KeyResult returns key's individual Result; valid only after Finish.
func (s *Sharded) KeyResult(key string) (Result, bool) {
	if !s.finished {
		return Result{}, false
	}
	k, ok := s.kidOf[key]
	if !ok {
		return Result{}, false
	}
	return s.perKey[k], true
}

// FailedKey names the key whose Reason the merged Result carries; valid
// only after a failed Finish.
func (s *Sharded) FailedKey() (string, bool) {
	if !s.finished || s.failKid < 0 {
		return "", false
	}
	return s.keys[s.failKid], true
}

// worker drains one shard's ring into kid-indexed automata until the
// Finish message, then publishes each key's Result (each kid is owned by
// exactly one shard, so the writes are disjoint) and exits.
func (s *Sharded) worker(sh *shard) {
	defer s.wg.Done()
	var checks []Automaton
	at := func(kid int, key string) Automaton {
		for len(checks) <= kid {
			checks = append(checks, nil)
		}
		if checks[kid] == nil {
			checks[kid] = s.newAuto(key)
		}
		return checks[kid]
	}
	for {
		m := sh.ring.popWait()
		switch m.kind {
		case msgBegin:
			at(m.kid, m.key).Begin(m.node, m.t)
		case msgAdd:
			at(m.kid, m.key).Add(m.op)
		case msgAdvance:
			for _, o := range checks {
				if o != nil {
					o.Advance(m.t)
				}
			}
		case msgFinish:
			for kid, o := range checks {
				if o != nil {
					s.results[kid] = o.Finish()
				}
			}
			return
		}
	}
}

// spscRing is a bounded single-producer single-consumer queue: a
// power-of-two ring indexed by free-running atomic head/tail counters, so
// the uncontended fast path is two atomic loads and a store on each side.
// When the ring runs empty the consumer parks on the condition variable;
// when it runs full the producer does. The park flags and the re-checked
// conditions all go through sequentially-consistent atomics, so a counter
// update after the flag was read false is necessarily seen by the parking
// side's re-check — no lost wakeups.
type spscRing struct {
	buf  []shardMsg
	mask uint64

	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to push (producer-owned)

	mu       sync.Mutex
	cond     *sync.Cond
	consPark atomic.Bool // consumer is parked (empty ring)
	prodPark atomic.Bool // producer is parked (full ring)
}

func newSPSCRing(capacity int) *spscRing {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &spscRing{buf: make([]shardMsg, n), mask: uint64(n - 1)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// push appends m, parking while the ring is full. Producer-side only.
func (r *spscRing) push(m shardMsg) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = m
			r.tail.Store(t + 1)
			if r.consPark.Load() {
				r.mu.Lock()
				r.cond.Broadcast()
				r.mu.Unlock()
			}
			return
		}
		r.mu.Lock()
		r.prodPark.Store(true)
		for r.tail.Load()-r.head.Load() == uint64(len(r.buf)) {
			r.cond.Wait()
		}
		r.prodPark.Store(false)
		r.mu.Unlock()
	}
}

// popWait removes the oldest message, parking while the ring is empty.
// Consumer-side only.
func (r *spscRing) popWait() shardMsg {
	for {
		h := r.head.Load()
		if r.tail.Load() != h {
			m := r.buf[h&r.mask]
			r.head.Store(h + 1)
			if r.prodPark.Load() {
				r.mu.Lock()
				r.cond.Broadcast()
				r.mu.Unlock()
			}
			return m
		}
		r.mu.Lock()
		r.consPark.Store(true)
		for r.tail.Load() == r.head.Load() {
			r.cond.Wait()
		}
		r.consPark.Store(false)
		r.mu.Unlock()
	}
}
