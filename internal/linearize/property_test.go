package linearize

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// randHistory draws a small random register history (some linearizable,
// some not).
func randHistory(r *rand.Rand) []Op {
	n := 2 + r.Intn(6)
	values := []string{"v0"}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		inv := simtime.Time(r.Intn(60))
		res := inv.Add(simtime.Duration(1 + r.Intn(40)))
		if r.Intn(2) == 0 {
			v := fmt.Sprintf("w%d", i)
			values = append(values, v)
			ops = append(ops, Op{Node: ta.NodeID(i % 3), Kind: Write, Value: v, Inv: inv, Res: res})
		} else {
			ops = append(ops, Op{Node: ta.NodeID(i % 3), Kind: Read, Value: values[r.Intn(len(values))], Inv: inv, Res: res})
		}
	}
	return ops
}

// Widening the windows can only help: OK is monotone in Widen.
func TestPropertyWidenMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		ops := randHistory(r)
		base := Check(ops, Options{Initial: "v0"})
		wide := Check(ops, Options{Initial: "v0", Widen: simtime.Duration(1 + r.Intn(50))})
		if base.OK && !wide.OK {
			t.Fatalf("widening broke a linearizable history:\n%v", ops)
		}
	}
}

// Decreasing the superlinearizability ε can only help: OK is antitone in
// MinAfterInv.
func TestPropertyMinAfterInvAntitone(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		ops := randHistory(r)
		big := simtime.Duration(1 + r.Intn(30))
		small := simtime.Duration(r.Int63n(int64(big)))
		strict := Check(ops, Options{Initial: "v0", MinAfterInv: big})
		loose := Check(ops, Options{Initial: "v0", MinAfterInv: small})
		if strict.OK && !loose.OK {
			t.Fatalf("smaller MinAfterInv broke a history (big=%v small=%v):\n%v", big, small, ops)
		}
	}
}

// Superlinearizability implies linearizability (the ε = 0 case of Q ⊆ P).
func TestPropertySuperImpliesPlain(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 400; trial++ {
		ops := randHistory(r)
		super := CheckSuperLinearizable(ops, "v0", simtime.Duration(1+r.Intn(20)))
		plain := CheckLinearizable(ops, "v0")
		if super.OK && !plain.OK {
			t.Fatalf("superlinearizable but not linearizable:\n%v", ops)
		}
	}
}

// Delaying every response preserves linearizability (windows only widen):
// the §6.3 argument that response shifts — the P^δ of Theorem 5.2 — keep
// the register problem solved.
func TestPropertyResponseShiftPreserves(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for trial := 0; trial < 400; trial++ {
		ops := randHistory(r)
		if !CheckLinearizable(ops, "v0").OK {
			continue
		}
		shifted := make([]Op, len(ops))
		copy(shifted, ops)
		for i := range shifted {
			shifted[i].Res = shifted[i].Res.Add(simtime.Duration(r.Intn(30)))
		}
		if !CheckLinearizable(shifted, "v0").OK {
			t.Fatalf("delaying responses broke linearizability:\n%v\n→\n%v", ops, shifted)
		}
	}
}

// ShiftFuture is equivalent to actually moving every response later by δ
// in the best case: if the plain check accepts, so does ShiftFuture; and
// ShiftFuture(δ) accepts whenever moving all responses by δ would.
func TestPropertyShiftFutureMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		ops := randHistory(r)
		base := CheckLinearizable(ops, "v0")
		sh := Check(ops, Options{Initial: "v0", ShiftFuture: simtime.Duration(1 + r.Intn(40))})
		if base.OK && !sh.OK {
			t.Fatalf("ShiftFuture broke a linearizable history:\n%v", ops)
		}
	}
}

// The generic checker with the register model agrees with the specialized
// one under every option combination.
func TestPropertyGenericAgreesWithOptions(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 250; trial++ {
		rops := randHistory(r)
		gops := make([]GOp, len(rops))
		for i, o := range rops {
			if o.Kind == Write {
				gops[i] = GOp{Node: o.Node, Op: "write:" + o.Value, Inv: o.Inv, Res: o.Res}
			} else {
				gops[i] = GOp{Node: o.Node, Op: "read", Result: o.Value, Inv: o.Inv, Res: o.Res}
			}
		}
		opt := Options{
			Initial:     "v0",
			MinAfterInv: simtime.Duration(r.Intn(15)),
			Widen:       simtime.Duration(r.Intn(15)),
			ShiftFuture: simtime.Duration(r.Intn(15)),
		}
		want := Check(rops, opt)
		got := CheckObject(gops, regModel{}, opt)
		if want.OK != got.OK {
			t.Fatalf("disagreement (opt=%+v): register=%v generic=%v\n%v", opt, want.OK, got.OK, rops)
		}
	}
}
