package linearize

import (
	"sort"

	"psclock/internal/ta"
)

// CheckSequentiallyConsistent decides sequential consistency of a register
// history: some total order of all operations that (1) preserves each
// node's program order and (2) satisfies register semantics — with no
// real-time constraint at all. This is the weaker correctness condition of
// Attiya and Welch [2], the paper algorithm L descends from; experiment
// E14 uses it to show what survives when linearizability does not, and the
// keyed store's seq tier is verified against it live.
//
// Program order at a node is operation order there (the §6.1 alternation
// condition makes a node's operations non-overlapping, so invocation order
// is unambiguous). Pending reads are dropped; pending writes may take
// effect or not.
//
// The decision procedure is a replay through the online engine (SeqOnline)
// in its pure mode (MaxStale = 0): each node's operations, sorted by
// invocation, are fed in node-ascending order and Finish returns the
// verdict — batch and online share one engine by construction, exactly as
// the linearizability wrappers replay through Online. The brute-force
// interleaving search this replaces survives as the differential oracle in
// the package's property tests.
func CheckSequentiallyConsistent(ops []Op, initial string) Result {
	perNode := make(map[ta.NodeID][]Op)
	var nodes []ta.NodeID
	for _, o := range ops {
		if o.Pending() && o.Kind == Read {
			continue // a pending read returned nothing
		}
		if _, seen := perNode[o.Node]; !seen {
			nodes = append(nodes, o.Node)
		}
		perNode[o.Node] = append(perNode[o.Node], o)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	s := NewSeqOnline(SeqOptions{Initial: initial})
	for _, n := range nodes {
		seq := perNode[n]
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].Inv < seq[j].Inv })
		for _, o := range seq {
			s.Add(o)
		}
	}
	return s.Finish()
}
