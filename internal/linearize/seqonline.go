package linearize

import (
	"fmt"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements the online (streaming, windowed) checker for
// sequential consistency — the weaker condition of Attiya and Welch [2]
// that the paper's algorithm L provides, and the specification the keyed
// store's seq tier is verified against. The batch entry point
// (CheckSequentiallyConsistent) replays a history through it, so both
// paths share one engine and return identical Results, exactly as the
// linearizability checker's batch wrappers replay through Online.
//
// # Cluster graph
//
// Sequential consistency asks for ONE total order of all operations that
// (1) preserves every node's program order and (2) satisfies register
// semantics — no real-time constraint. Under the §3 uniqueness assumption
// (each value written at most once, and never the initial value), the
// total order decomposes into segments: the segment of value v opens with
// write(v) and contains exactly the reads returning v. Call the segment's
// operations the *cluster* of v; the initial value v0 owns the implicit
// first segment (no write). A valid total order exists if and only if
//
//   - no read of v precedes write(v) in its own node's program order
//     (the read would have to follow the write in the total order, against
//     program order — checked when the write arrives);
//   - no operation of any other cluster precedes a read of v0 in program
//     order (v0's segment is first, so such an edge is a contradiction);
//   - the directed graph on clusters, with an edge u → v whenever some
//     operation in cluster u precedes some operation in cluster v in a
//     node's program order (u ≠ v), is acyclic.
//
// Sufficiency: order segments by any topological order (v0 first; it never
// has in-edges); inside a segment the write goes first and reads follow in
// per-node program order — acyclicity forces each node's operations within
// one cluster to be consecutive in that node's program order, so no intra-
// segment conflict remains. Necessity: segments of a witness order are
// contiguous (uniqueness), so program order between clusters induces the
// edge relation on segment positions, which is therefore acyclic. This
// replaces the exponential interleaving search with incremental graph
// maintenance: O(1) amortized per operation plus edge-degree work.
//
// # Watermarks, staleness, and garbage collection
//
// Pure sequential consistency has no real-time component, so nothing ever
// provably settles: a read returning ancient v may arrive arbitrarily late
// and still be legal (ordered early in the total order). A streaming
// monitor therefore checks the Θ-bounded variant (MaxStale), in the
// specify-precisely-then-check methodology of partition consistency
// (Cheng/Higham/Kawash, arXiv 1306.0077): sequential consistency AND
//
//   - a read returning v must respond after write(v) was invoked (reads
//     observe only sent values — true of any real system);
//   - once a superseding write w' completes — one invoked more than Θ
//     after write(v) responded — reads of v must be invoked within Θ of
//     w' responding.
//
// Θ prices the end-to-end staleness of algorithm L: a value stops being
// readable once a newer update has been applied everywhere, which lags the
// newer write's response by at most c + δ + 2ε + ℓ (UPDATE application
// time vs write response, Figure 3, plus clock offset and timer lateness);
// the Θ margin on the superseding side likewise absorbs tag inversion
// between writes within 2ε. With MaxStale set, a cluster's deadline is
// min over superseding writes of res(w') + Θ; when the watermark (adjusted
// for open invocations, as in Online) passes the deadline the cluster is
// settled — no future read may join it without violating the staleness
// bound — and a settled cluster whose in-edges all come from committed
// clusters commits: it is placed in the growing total-order prefix and
// freed. Steady-state memory is O(live values per key), not O(history).
// MaxStale = 0 disables settling entirely: the engine checks pure
// sequential consistency and frees state only at Finish — the batch mode.
type SeqOnline struct {
	opt      SeqOptions
	finished bool
	final    Result

	clusters map[string]*seqCluster
	open     map[ta.NodeID][]simtime.Time
	lastOp   map[ta.NodeID]Op          // last non-dropped op, for overlap reporting
	prevC    map[ta.NodeID]*seqCluster // cluster of the node's last graph-participating op
	pends    []seqPend                 // Finish-time pending writes, fate unresolved

	committed int // clusters placed in the total-order prefix

	// Failure slots, reported at Finish with the batch checker's precedence:
	// program-order overlap, then duplicate write, then no-total-order (or
	// staleness, in the Θ-bounded mode). hardFail stops graph maintenance;
	// a duplicate write alone keeps the overlap scan running, because the
	// batch checker reports any overlap ahead of any duplicate.
	hardFail   bool
	overlapErr string
	dupErr     string
	orderErr   string
}

// SeqOptions tunes the sequential-consistency checker.
type SeqOptions struct {
	// Initial is the register's initial value v0. Written values must be
	// unique and distinct from it (§3); a write of the initial value is
	// reported as a duplicate.
	Initial string
	// MaxStale is Θ, the staleness bound enabling window garbage
	// collection: with it set, the engine checks Θ-bounded sequential
	// consistency (see the package comment above) and commits clusters as
	// the watermark passes their deadlines. Zero checks pure sequential
	// consistency with no mid-stream settling — required for batch parity,
	// unbounded-memory in the worst case. The Θ-bounded mode additionally
	// assumes written values are unique (the §3 assumption the monitored
	// workloads guarantee): a duplicate is detected only while the first
	// write's cluster is still within the window, since remembering every
	// committed value would defeat the garbage collection.
	MaxStale simtime.Duration
	// Yield, when non-nil, is called after each Advance's settle/commit
	// sweep; live monitors sharing a core with the system under test set it
	// to runtime.Gosched. No effect on the verdict.
	Yield func()
}

// Automaton is the single-key streaming-checker surface shared by the
// linearizability engine (Online) and the sequential-consistency engine
// (SeqOnline). Sharded fans a keyed stream out over per-key Automata; the
// ShardedOptions.New hook selects which engine each key gets — the tiered
// store routes lin-tier keys to Online and seq-tier keys to SeqOnline.
type Automaton interface {
	// Begin declares an in-flight invocation, holding the processing bound.
	Begin(node ta.NodeID, inv simtime.Time)
	// Add submits a completed (or Finish-time pending) operation, in the
	// canonical per-node program order.
	Add(op Op)
	// Advance supplies the low-watermark: no operation will be invoked
	// before it.
	Advance(watermark simtime.Time)
	// Finish settles everything and returns the verdict. Idempotent.
	Finish() Result
}

var (
	_ Automaton = (*Online)(nil)
	_ Automaton = (*SeqOnline)(nil)
)

// seqCluster is one value's segment-in-progress: its write (once arrived),
// its reader nodes, and its edges in the cluster graph.
type seqCluster struct {
	value     string
	isInitial bool

	hasWrite  bool
	writeNode ta.NodeID
	writeRes  simtime.Time // response of the write; 0 for v0, Never when forced pending

	firstReadRes simtime.Time // earliest completed-read response (writer-unseen bound)
	readers      []ta.NodeID  // deduplicated reader nodes (intra-cluster check)

	succs    []*seqCluster // deduplicated out-edges
	preds    []*seqCluster // deduplicated in-edges
	blockers int           // uncommitted in-edge sources

	deadline  simtime.Time // staleness deadline (Never until superseded)
	settled   bool
	committed bool
}

// seqPend is a stashed Finish-time pending write: kept only if some
// completed read observed its value (then it must have taken effect),
// dropped otherwise — the same fate resolution as the batch checker's.
// Pending operations must be each node's final operation (the monitor
// submits them only at Finish), so a stashed write has no program-order
// successors and dropping it removes constraints only.
type seqPend struct {
	node  ta.NodeID
	value string
	prev  *seqCluster
}

// NewSeqOnline returns an online sequential-consistency checker.
func NewSeqOnline(opt SeqOptions) *SeqOnline {
	s := &SeqOnline{
		opt:      opt,
		clusters: make(map[string]*seqCluster),
		open:     make(map[ta.NodeID][]simtime.Time),
		lastOp:   make(map[ta.NodeID]Op),
		prevC:    make(map[ta.NodeID]*seqCluster),
	}
	// v0's cluster: conceptually written before the run began.
	s.clusters[opt.Initial] = &seqCluster{
		value: opt.Initial, isInitial: true,
		hasWrite: true, writeNode: ta.NoNode, writeRes: 0,
		firstReadRes: simtime.Never, deadline: simtime.Never,
	}
	return s
}

// Begin implements Automaton: declare an in-flight invocation on node at
// inv, holding the staleness watermark there until Add resolves it.
func (s *SeqOnline) Begin(node ta.NodeID, inv simtime.Time) {
	if s.finished {
		return
	}
	s.open[node] = append(s.open[node], inv)
}

// Add implements Automaton. Operations must arrive in per-node program
// order (invocation order — the alternation condition makes it well
// defined); pending operations are meant to be submitted just before
// Finish and must be their node's final operation.
func (s *SeqOnline) Add(op Op) {
	if s.finished {
		return
	}
	if invs := s.open[op.Node]; len(invs) > 0 {
		for i, t := range invs {
			if t == op.Inv {
				invs[i] = invs[len(invs)-1]
				invs = invs[:len(invs)-1]
				break
			}
		}
		if len(invs) == 0 {
			delete(s.open, op.Node)
		} else {
			s.open[op.Node] = invs
		}
	}
	if s.hardFail {
		return
	}
	if op.Pending() && op.Kind == Read {
		return // a pending read returned nothing: dropped before any check
	}
	// Program-order overlap: invoked before the node's previous operation
	// responded. Identical message to the batch checker's.
	if last, ok := s.lastOp[op.Node]; ok && op.Inv < last.Res && !last.Pending() {
		if s.overlapErr == "" {
			s.overlapErr = fmt.Sprintf(
				"linearize: node %d operations overlap (%v then %v): program order undefined",
				op.Node, last, op)
		}
		s.fail()
		return
	}
	s.lastOp[op.Node] = op
	if op.Kind == Write {
		if c := s.clusters[op.Value]; (c != nil && c.hasWrite) || s.pendHas(op.Value) {
			if s.dupErr == "" {
				s.dupErr = fmt.Sprintf("linearize: value %q written twice", op.Value)
			}
			return
		}
	}
	if s.dupErr != "" {
		return // verdict decided; keep consuming only for the overlap scan
	}
	if op.Pending() {
		s.pends = append(s.pends, seqPend{node: op.Node, value: op.Value, prev: s.prevC[op.Node]})
		return
	}
	c := s.cluster(op.Value)
	if op.Kind == Read {
		if c.settled {
			// The cluster's staleness deadline passed every open invocation,
			// so this read was invoked beyond Θ of the superseding write.
			if s.orderErr == "" {
				s.orderErr = fmt.Sprintf(
					"linearize: read of %q at node %d invoked past its staleness deadline (Θ=%v)",
					op.Value, op.Node, s.opt.MaxStale)
			}
			s.fail()
			return
		}
		if op.Res < c.firstReadRes {
			c.firstReadRes = op.Res
		}
		s.addReader(c, op.Node)
	} else {
		c.hasWrite = true
		c.writeNode = op.Node
		c.writeRes = op.Res
		if s.readerHas(c, op.Node) {
			// A read of this value precedes its own write in program order.
			s.noOrder()
			return
		}
		if s.opt.MaxStale > 0 {
			// This write supersedes every value whose write responded more
			// than Θ before it was invoked (the Θ margin absorbs write-tag
			// inversion within 2ε): their reads must now arrive within Θ.
			for _, d := range s.clusters {
				if d == c || !d.hasWrite || d.writeRes == simtime.Never {
					continue
				}
				if d.writeRes.Add(s.opt.MaxStale) < op.Inv {
					if dl := op.Res.Add(s.opt.MaxStale); dl < d.deadline {
						d.deadline = dl
					}
				}
			}
		}
	}
	s.link(s.prevC[op.Node], c)
	if s.hardFail {
		return
	}
	s.prevC[op.Node] = c
}

// cluster returns (creating if needed) the value's cluster.
func (s *SeqOnline) cluster(v string) *seqCluster {
	if c, ok := s.clusters[v]; ok {
		return c
	}
	c := &seqCluster{value: v, firstReadRes: simtime.Never, deadline: simtime.Never}
	s.clusters[v] = c
	return c
}

func (s *SeqOnline) pendHas(v string) bool {
	for i := range s.pends {
		if s.pends[i].value == v {
			return true
		}
	}
	return false
}

func (s *SeqOnline) addReader(c *seqCluster, n ta.NodeID) {
	if !s.readerHas(c, n) {
		c.readers = append(c.readers, n)
	}
}

func (s *SeqOnline) readerHas(c *seqCluster, n ta.NodeID) bool {
	for _, r := range c.readers {
		if r == n {
			return true
		}
	}
	return false
}

// link adds the program-order edge prev → c to the cluster graph. An edge
// into v0's cluster contradicts its mandatory first position; an edge from
// an already-committed cluster is satisfied by construction (the source is
// already placed in the prefix).
func (s *SeqOnline) link(prev, c *seqCluster) {
	if prev == nil || prev == c || prev.committed {
		return
	}
	if c.isInitial {
		s.noOrder()
		return
	}
	for _, e := range prev.succs {
		if e == c {
			return
		}
	}
	prev.succs = append(prev.succs, c)
	c.preds = append(c.preds, prev)
	c.blockers++
}

// noOrder records the generic no-total-order failure.
func (s *SeqOnline) noOrder() {
	if s.orderErr == "" {
		s.orderErr = "no sequentially consistent total order exists"
	}
	s.fail()
}

// fail makes the verdict sticky and frees the graph.
func (s *SeqOnline) fail() {
	s.hardFail = true
	s.clusters, s.prevC, s.pends = nil, nil, nil
}

// Advance implements Automaton: in the Θ-bounded mode, settle clusters
// whose staleness deadline the watermark has passed, commit every settled
// cluster whose in-edges are all committed, and fail on a definitely stuck
// settled component (a cycle). Pure mode (MaxStale = 0) is a no-op: pure
// sequential consistency never settles early. Watermarks need not be
// monotone; a stale bound settles nothing new.
func (s *SeqOnline) Advance(watermark simtime.Time) {
	if s.finished || s.hardFail || s.opt.MaxStale == 0 {
		return
	}
	b := watermark
	for _, invs := range s.open {
		for _, inv := range invs {
			if inv < b {
				b = inv
			}
		}
	}
	stuck := false
	for _, c := range s.clusters {
		if !c.settled && c.deadline <= b {
			c.settled = true
		}
		// A value read but never written: once no invocation before the
		// first observing read's response can still be open, the write can
		// no longer arrive (in the Θ-bounded spec reads observe only sent
		// values, and a write responds after it is invoked).
		if !c.hasWrite && c.firstReadRes < b {
			if s.orderErr == "" {
				s.orderErr = fmt.Sprintf(
					"linearize: value %q read but never written within the staleness window", c.value)
			}
			s.fail()
			return
		}
	}
	s.commitDrain()
	for _, c := range s.clusters {
		if c.settled && !c.committed {
			stuck = true
			break
		}
	}
	if stuck && s.definitelyStuck() {
		s.noOrder()
		return
	}
	if s.opt.Yield != nil {
		s.opt.Yield()
	}
}

// commitDrain commits every cluster that is settled, has its write, and
// has no uncommitted in-edges, repeatedly: committing one may unblock its
// successors. Committed clusters leave the map; edges from them are
// satisfied by construction. A writeless cluster never commits — its reads
// returned a value nobody (yet) wrote — so at Finish it is a leftover
// (failure), and mid-stream a read arriving after its value's cluster
// committed recreates a writeless ghost that correctly fails rather than
// silently re-committing.
func (s *SeqOnline) commitDrain() {
	progress := true
	for progress {
		progress = false
		for v, c := range s.clusters {
			if !c.settled || !c.hasWrite || c.committed || c.blockers > 0 {
				continue
			}
			c.committed = true
			s.committed++
			delete(s.clusters, v)
			for _, e := range c.succs {
				e.blockers--
			}
			progress = true
		}
	}
}

// definitelyStuck reports whether some settled, uncommitted cluster can
// never commit: every path of uncommitted blockers above it stays within
// settled clusters, which (the drain having converged) implies a cycle.
// Clusters with an unsettled blocker — whose deadline has not passed — are
// excused, transitively: their blocker may still commit later.
func (s *SeqOnline) definitelyStuck() bool {
	excused := make(map[*seqCluster]bool)
	progress := true
	for progress {
		progress = false
		for _, c := range s.clusters {
			if c.committed || excused[c] {
				continue
			}
			for _, p := range c.preds {
				if p.committed {
					continue
				}
				if !p.settled || excused[p] {
					excused[c] = true
					progress = true
					break
				}
			}
		}
	}
	for _, c := range s.clusters {
		if c.settled && !c.committed && !excused[c] {
			return true
		}
	}
	return false
}

// Finish implements Automaton: resolve pending writes (forced when some
// completed read observed the value, dropped otherwise), settle and commit
// everything, and report. Leftover clusters mean a cycle or a read of a
// never-written value — no total order. Identical to the batch checker on
// the same per-node operation sequences; idempotent.
func (s *SeqOnline) Finish() Result {
	if s.finished {
		return s.final
	}
	s.finished = true
	if !s.hardFail && s.dupErr == "" {
		for _, p := range s.pends {
			c, ok := s.clusters[p.value]
			if !ok {
				continue // unobserved: the write never took effect
			}
			c.hasWrite = true
			c.writeNode = p.node
			c.writeRes = simtime.Never
			if s.readerHas(c, p.node) {
				s.noOrder()
				break
			}
			s.link(p.prev, c)
			if s.hardFail {
				break
			}
		}
	}
	if !s.hardFail && s.dupErr == "" {
		for _, c := range s.clusters {
			c.settled = true
		}
		s.commitDrain()
		if len(s.clusters) > 0 {
			// Cycles, or reads of values never written (and not initial).
			if s.orderErr == "" {
				s.orderErr = "no sequentially consistent total order exists"
			}
		}
	}
	switch {
	case s.overlapErr != "":
		s.final = Result{OK: false, Reason: s.overlapErr}
	case s.dupErr != "":
		s.final = Result{OK: false, Reason: s.dupErr}
	case s.orderErr != "":
		s.final = Result{OK: false, Reason: s.orderErr}
	default:
		// States counts clusters committed — the incremental engine's unit
		// of work, deterministic for a given set of per-node sequences and
		// independent of Advance slicing (failed runs report zero).
		s.final = Result{OK: true, States: s.committed}
	}
	s.clusters, s.open, s.lastOp, s.prevC, s.pends = nil, nil, nil, nil, nil
	return s.final
}
