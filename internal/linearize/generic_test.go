package linearize

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// regModel mirrors the object package's register spec, declared locally so
// the checker package stays dependency-free.
type regModel struct{}

func (regModel) Name() string { return "register" }
func (regModel) Init() string { return "v0" }
func (regModel) Apply(state, op string) (string, string) {
	if v, ok := strings.CutPrefix(op, "write:"); ok {
		return v, ""
	}
	return state, state // read
}

type cntModel struct{}

func (cntModel) Name() string { return "counter" }
func (cntModel) Init() string { return "0" }
func (cntModel) Apply(state, op string) (string, string) {
	cur, _ := strconv.Atoi(state)
	if ks, ok := strings.CutPrefix(op, "add:"); ok {
		k, _ := strconv.Atoi(ks)
		return strconv.Itoa(cur + k), ""
	}
	return state, state // get
}

func gop(node int, op, result string, inv, res simtime.Time) GOp {
	return GOp{Node: ta.NodeID(node), Op: op, Result: result, Inv: inv, Res: res}
}

func TestGenericSequentialCounter(t *testing.T) {
	ops := []GOp{
		gop(0, "add:2", "", 0, 10),
		gop(1, "get", "2", 20, 30),
		gop(0, "add:3", "", 40, 50),
		gop(1, "get", "5", 60, 70),
	}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); !r.OK {
		t.Fatalf("rejected: %s", r.Reason)
	}
}

func TestGenericCounterViolation(t *testing.T) {
	// get=2 strictly after both adds completed must be 5.
	ops := []GOp{
		gop(0, "add:2", "", 0, 10),
		gop(0, "add:3", "", 20, 30),
		gop(1, "get", "2", 40, 50),
	}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); r.OK {
		t.Fatal("stale counter read accepted")
	}
}

func TestGenericCounterConcurrentAdds(t *testing.T) {
	// A get overlapping two adds may see 0, 2, 3 or 5.
	for _, want := range []string{"0", "2", "3", "5"} {
		ops := []GOp{
			gop(0, "add:2", "", 0, 100),
			gop(1, "add:3", "", 0, 100),
			gop(2, "get", want, 50, 60),
		}
		if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); !r.OK {
			t.Errorf("get=%s rejected: %s", want, r.Reason)
		}
	}
	// But never 4.
	ops := []GOp{
		gop(0, "add:2", "", 0, 100),
		gop(1, "add:3", "", 0, 100),
		gop(2, "get", "4", 50, 60),
	}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); r.OK {
		t.Error("impossible counter value accepted")
	}
}

func TestGenericPendingUpdate(t *testing.T) {
	// A pending add may or may not have taken effect.
	for _, want := range []string{"0", "7"} {
		ops := []GOp{
			gop(0, "add:7", "", 0, simtime.Never),
			gop(1, "get", want, 100, 110),
		}
		if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); !r.OK {
			t.Errorf("get=%s with pending add rejected: %s", want, r.Reason)
		}
	}
	// It cannot take effect before its invocation.
	ops := []GOp{
		gop(0, "add:7", "", 100, simtime.Never),
		gop(1, "get", "7", 10, 20),
	}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0"}); r.OK {
		t.Error("effect before invocation accepted")
	}
}

func TestGenericSuperAndWiden(t *testing.T) {
	ops := []GOp{gop(0, "get", "0", 100, 110)}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0", MinAfterInv: 20}); r.OK {
		t.Error("window shorter than MinAfterInv accepted")
	}
	if r := CheckObject(ops, cntModel{}, Options{Initial: "0", MinAfterInv: 20, Widen: 15}); !r.OK {
		t.Error("widened window rejected")
	}
}

// Cross-validation: the generic checker with the register model must agree
// with the specialized register checker on random histories.
func TestGenericAgreesWithRegisterChecker(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(5)
		values := []string{"v0"}
		var rops []Op
		var gops []GOp
		for i := 0; i < n; i++ {
			inv := simtime.Time(r.Intn(50))
			res := inv.Add(simtime.Duration(1 + r.Intn(30)))
			if r.Intn(2) == 0 {
				v := fmt.Sprintf("w%d", i)
				values = append(values, v)
				rops = append(rops, Op{Node: ta.NodeID(i % 3), Kind: Write, Value: v, Inv: inv, Res: res})
				gops = append(gops, gop(i%3, "write:"+v, "", inv, res))
			} else {
				v := values[r.Intn(len(values))]
				rops = append(rops, Op{Node: ta.NodeID(i % 3), Kind: Read, Value: v, Inv: inv, Res: res})
				gops = append(gops, gop(i%3, "read", v, inv, res))
			}
		}
		want := CheckLinearizable(rops, "v0")
		got := CheckObject(gops, regModel{}, Options{Initial: "v0"})
		if want.OK != got.OK {
			t.Fatalf("trial %d: register=%v generic=%v for:\n%v", trial, want.OK, got.OK, rops)
		}
	}
}

func TestGenericStateBudget(t *testing.T) {
	var ops []GOp
	for i := 0; i < 18; i++ {
		ops = append(ops, gop(i, fmt.Sprintf("add:%d", i+1), "", 0, 1000))
	}
	ops = append(ops, gop(20, "get", "-1", 2000, 2010))
	r := CheckObject(ops, cntModel{}, Options{Initial: "0", MaxStates: 500})
	if r.OK {
		t.Error("impossible history accepted")
	}
}

func TestGenericLongSequentialFast(t *testing.T) {
	var ops []GOp
	total := 0
	ts := simtime.Time(0)
	for i := 0; i < 3000; i++ {
		if i%3 == 0 {
			total += 2
			ops = append(ops, gop(i%5, "add:2", "", ts, ts+10))
		} else {
			ops = append(ops, gop(i%5, "get", strconv.Itoa(total), ts, ts+10))
		}
		ts += 20
	}
	r := CheckObject(ops, cntModel{}, Options{Initial: "0"})
	if !r.OK {
		t.Fatalf("rejected: %s", r.Reason)
	}
}

func TestGOpString(t *testing.T) {
	if gop(1, "get", "3", 0, 5).String() == "" {
		t.Error("empty String")
	}
	if !gop(0, "x", "", 0, simtime.Never).Pending() {
		t.Error("Pending() false")
	}
}
