package linearize

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// checkSCOracle is the brute-force sequential-consistency decision
// procedure CheckSequentiallyConsistent used before the online engine
// existed: a memoized search over all interleavings of the per-node
// program orders. It is kept verbatim as the differential oracle for the
// property tests — the cluster-graph engine must agree with it on every
// random history (TestSeqOnlineMatchesOracle).
func checkSCOracle(ops []Op, initial string) Result {
	perNode := make(map[int][]Op)
	var nodes []int
	for _, o := range ops {
		n := int(o.Node)
		if o.Pending() && o.Kind == Read {
			continue // a pending read returned nothing
		}
		if _, seen := perNode[n]; !seen {
			nodes = append(nodes, n)
		}
		perNode[n] = append(perNode[n], o)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		seq := perNode[n]
		sort.SliceStable(seq, func(i, j int) bool { return seq[i].Inv < seq[j].Inv })
		for i := 1; i < len(seq); i++ {
			if seq[i].Inv < seq[i-1].Res && !seq[i-1].Pending() {
				return Result{OK: false, Reason: fmt.Sprintf(
					"linearize: node %d operations overlap (%v then %v): program order undefined",
					n, seq[i-1], seq[i])}
			}
		}
		perNode[n] = seq
	}

	writers := make(map[string]bool)
	for _, o := range ops {
		if o.Kind == Write {
			if writers[o.Value] {
				return Result{OK: false, Reason: fmt.Sprintf("linearize: value %q written twice", o.Value)}
			}
			writers[o.Value] = true
		}
	}

	c := &scOracle{
		nodes:   nodes,
		perNode: perNode,
		memo:    make(map[string]bool),
		max:     4 << 20,
	}
	ok := c.dfs(make([]int, len(nodes)), initial)
	r := Result{OK: ok, States: c.states}
	if !ok {
		if c.budget {
			r.Reason = fmt.Sprintf("linearize: state budget (%d) exhausted", c.max)
		} else {
			r.Reason = "no sequentially consistent total order exists"
		}
	}
	return r
}

type scOracle struct {
	nodes   []int
	perNode map[int][]Op
	memo    map[string]bool
	states  int
	max     int
	budget  bool
}

func (c *scOracle) key(pos []int, val string) string {
	var b strings.Builder
	for _, p := range pos {
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(',')
	}
	b.WriteString(val)
	return b.String()
}

// dfs interleaves the per-node sequences: at each step, any node's next
// operation may be appended to the total order if the register semantics
// accept it.
func (c *scOracle) dfs(pos []int, val string) bool {
	c.states++
	if c.states > c.max {
		c.budget = true
		return false
	}
	done := true
	for i, n := range c.nodes {
		if pos[i] < len(c.perNode[n]) {
			done = false
		}
		_ = n
	}
	if done {
		return true
	}
	k := c.key(pos, val)
	if res, seen := c.memo[k]; seen {
		return res
	}
	for i, n := range c.nodes {
		if pos[i] >= len(c.perNode[n]) {
			continue
		}
		o := c.perNode[n][pos[i]]
		pos[i]++
		switch {
		case o.Kind == Write:
			// A pending write may also be dropped (it never took effect);
			// a completed write must take effect.
			if c.dfs(pos, o.Value) {
				pos[i]--
				c.memo[k] = true
				return true
			}
			if o.Pending() && c.dfs(pos, val) {
				pos[i]--
				c.memo[k] = true
				return true
			}
		case o.Value == val:
			if c.dfs(pos, val) {
				pos[i]--
				c.memo[k] = true
				return true
			}
		}
		pos[i]--
	}
	c.memo[k] = false
	return false
}
