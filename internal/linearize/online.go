package linearize

import (
	"encoding/binary"
	"fmt"
	"sort"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file implements the online (streaming, windowed) form of the
// Wing-Gong checker. The batch entry points (Check, CheckEps,
// CheckSuperLinearizable) are thin wrappers that replay a history through
// it, so one engine serves both paths and the verdicts are identical by
// construction.
//
// # Frontier automaton
//
// Operations arrive as they complete. Each gets a placement window
// [lo, hi] exactly as in the batch checker (lo = Inv + MinAfterInv − Widen
// clamped at 0; hi = Res + Widen + ShiftFuture, or Never while pending).
// Instead of one big backtracking search over the whole history, the
// engine processes operations' *deadlines* (their hi instants) in
// canonical (hi, lo, arrival) order. Processing deadline d means: in every
// linearization, d must be placed using only operations whose windows open
// no later than d closes — everything else opens strictly afterwards. The
// engine therefore maintains a *frontier*: the set of distinguishable
// search states after all processed deadlines, where a state is
//
//	(early, last, ℓ)
//
// — the set of not-yet-closed operations already linearized ahead of their
// deadline ("early"), the register value after the linearized prefix, and
// ℓ, the maximum window-open over the prefix (the running lower bound on
// the next linearization point; the batch dfs tracks the same quantity
// implicitly through its sort order). Two states with equal (early, last)
// are merged keeping the smaller ℓ, which dominates: every continuation
// feasible for the larger ℓ is feasible for the smaller.
//
// At deadline d, states that already linearized d simply discard it from
// their early set; every other state runs a bounded dfs committing some
// set of still-open operations and then d itself, in every value-
// consistent order (greedy earliest-point placement per commit, the same
// exchange argument as the batch checker). The union of resulting states,
// deduplicated, is the next frontier. An empty frontier is a definitive
// violation: failure is sticky and later stages are skipped, so the
// verdict — and the States count — is independent of how the caller slices
// its Advance calls. Soundness and completeness follow from decomposing
// any linearization order into segments each ending at the next deadline
// in hi-order: the dfs at that deadline explores exactly the candidate
// segments (operations opening after hi_d cannot precede d in any order,
// and the stranding prune only discards states in which some open
// operation's window has provably closed below ℓ).
//
// # Watermarks and garbage collection
//
// Advance(w) tells the engine no further operation will be *invoked*
// before w (the executors' event-time monotonicity guarantee, surfaced by
// exec.Sink.Flush). A deadline is safe to process once no future arrival
// could either (a) open before it closes — future windows open at or after
// min over open invocations of (Inv + MinAfterInv − Widen) and at least
// w + MinAfterInv − Widen — or (b) close before it closes — future windows
// close at or after w. Begin declares in-flight invocations so (a) is
// exact; operations submitted while still pending freeze the bound at
// their own invocation until Finish resolves their fate. Processed
// operations leave the window entirely: steady-state memory is O(open
// window), not O(history). The value-uniqueness bookkeeping (duplicate
// writes, reads of never-written values) still grows with the number of
// distinct values; AssumeUnique drops it for trusted workloads, making the
// whole engine O(window).
type Online struct {
	opt       Options
	finishing bool
	finished  bool
	final     Result

	window   []olIv
	frontier []olState
	open     map[ta.NodeID][]simtime.Time
	nextID   int
	states   int
	pruned   int
	keyBuf   []byte // scratch for the per-stage memo key

	failed     bool
	failReason string

	// Value-uniqueness bookkeeping; nil under Options.AssumeUnique.
	dupErr   error
	writers  map[string]int // value → first writing op (arrival index)
	observed map[string]int // value → first completed read (arrival index)
}

// olIv is one submitted operation with its placement window.
type olIv struct {
	id      int
	kind    Kind
	value   string
	lo, hi  simtime.Time
	pending bool
	closed  bool
}

// olState is one frontier state; early holds ids in ascending order and is
// treated as immutable (copy on write).
type olState struct {
	early []int
	last  string
	ell   simtime.Time
}

// NewOnline returns an online checker with the given options.
func NewOnline(opt Options) *Online {
	if opt.MaxStates == 0 {
		opt.MaxStates = 4 << 20
	}
	o := &Online{
		opt:      opt,
		open:     make(map[ta.NodeID][]simtime.Time),
		frontier: []olState{{last: opt.Initial}},
	}
	if !opt.AssumeUnique {
		o.writers = make(map[string]int)
		o.observed = make(map[string]int)
	}
	return o
}

// Begin declares an in-flight invocation on node at time inv. The checker
// holds its processing bound at the invocation until Add supplies the
// completed (or Finish-time pending) operation, because a not-yet-completed
// operation may still have to be linearized before already-completed ones.
// Invocations are tracked per (node, inv), so a node's next Begin may
// safely arrive before the Add completing its previous operation when both
// fall at the same instant.
func (o *Online) Begin(node ta.NodeID, inv simtime.Time) {
	if o.finished {
		return
	}
	o.open[node] = append(o.open[node], inv)
}

// Add submits an operation, normally at its completion; pending operations
// (Res == Never) are meant to be submitted just before Finish. Submission
// order is the canonical arrival order used for tie-breaking and error
// reporting, so replaying a batch history must Add in history order.
func (o *Online) Add(op Op) {
	if o.finished {
		return
	}
	id := o.nextID
	o.nextID++
	if invs := o.open[op.Node]; len(invs) > 0 {
		for i, t := range invs {
			if t == op.Inv {
				invs[i] = invs[len(invs)-1]
				invs = invs[:len(invs)-1]
				break
			}
		}
		if len(invs) == 0 {
			delete(o.open, op.Node)
		} else {
			o.open[op.Node] = invs
		}
	}
	if o.writers != nil {
		if op.Kind == Write {
			if j, dup := o.writers[op.Value]; dup {
				if o.dupErr == nil {
					o.dupErr = fmt.Errorf("linearize: value %q written twice (ops %d and %d)", op.Value, j, id)
				}
			} else {
				o.writers[op.Value] = id
			}
		} else if !op.Pending() {
			if _, seen := o.observed[op.Value]; !seen {
				o.observed[op.Value] = id
			}
		}
	}
	if o.failed {
		return // verdict already settled; keep only the bookkeeping above
	}
	lo := op.Inv.Add(o.opt.MinAfterInv)
	if o.opt.Widen > 0 {
		lo = lo.Add(-o.opt.Widen)
	}
	if lo < 0 {
		lo = 0
	}
	hi := simtime.Never
	if !op.Pending() {
		hi = op.Res.Add(o.opt.Widen).Add(o.opt.ShiftFuture)
	}
	o.window = append(o.window, olIv{
		id: id, kind: op.Kind, value: op.Value, lo: lo, hi: hi, pending: op.Pending(),
	})
}

// Advance informs the checker that no operation will be invoked before
// watermark, processes every deadline that is now settled, and
// garbage-collects them from the window. Watermarks need not be monotone;
// a stale bound simply settles nothing new.
func (o *Online) Advance(watermark simtime.Time) {
	if o.finished {
		return
	}
	if o.failed {
		o.window = o.window[:0] // verdict settled: the window is garbage
		return
	}
	o.drain(o.effBound(watermark), false)
}

// effBound converts the invocation watermark into the largest deadline
// bound that is safe to process: future windows cannot open before any of
// the candidate terms, and cannot close before w itself.
func (o *Online) effBound(w simtime.Time) simtime.Time {
	adj := func(t simtime.Time) simtime.Time {
		t = t.Add(o.opt.MinAfterInv)
		if o.opt.Widen > 0 {
			t = t.Add(-o.opt.Widen)
		}
		return t
	}
	b := w
	if a := adj(w); a < b {
		b = a
	}
	for _, invs := range o.open {
		for _, inv := range invs {
			if a := adj(inv); a < b {
				b = a
			}
		}
	}
	for i := range o.window {
		if o.window[i].pending && o.window[i].lo < b {
			b = o.window[i].lo
		}
	}
	return b
}

// Finish settles every remaining deadline and returns the verdict; it is
// idempotent, and the Result is identical to the batch checker's on the
// same operation sequence. Open invocations that never completed should be
// Added as pending operations before calling Finish; reads and unobserved
// writes among them are dropped exactly as in the batch checker.
func (o *Online) Finish() Result {
	if o.finished {
		return o.final
	}
	o.finished, o.finishing = true, true
	// Value-uniqueness violations take priority over (and report without)
	// search results, mirroring the batch checker's construction errors.
	if o.writers != nil {
		if o.dupErr != nil {
			o.final = Result{OK: false, Reason: o.dupErr.Error()}
			return o.final
		}
		badID, badVal := -1, ""
		for v, id := range o.observed {
			if v == o.opt.Initial {
				continue
			}
			if _, ok := o.writers[v]; ok {
				continue
			}
			if badID < 0 || id < badID {
				badID, badVal = id, v
			}
		}
		if badID >= 0 {
			o.final = Result{OK: false, Reason: fmt.Sprintf("linearize: value %q read but never written", badVal)}
			return o.final
		}
	}
	if !o.failed {
		// A pending read returned nothing, and a pending write nobody read
		// may never have taken effect: both may simply not have happened.
		// An observed pending write must be placeable (unbounded window).
		wasObserved := o.observedValues()
		kept := o.window[:0]
		for _, iv := range o.window {
			if iv.pending && (iv.kind == Read || !wasObserved(iv.value)) {
				continue
			}
			kept = append(kept, iv)
		}
		o.window = kept
		o.drain(0, true)
	}
	if o.failed {
		o.final = Result{OK: false, Reason: o.failReason, States: o.states, Pruned: o.pruned}
	} else {
		o.final = Result{OK: true, States: o.states, Pruned: o.pruned}
	}
	o.window, o.frontier, o.open, o.writers, o.observed = nil, nil, nil, nil, nil
	return o.final
}

// observedValues returns the was-this-value-read-by-a-completed-read
// predicate used to resolve pending writes. Under AssumeUnique the exact
// map is not kept; the still-windowed completed reads stand in for it,
// which is sound whenever reads that observed a pending write are still
// unsettled at Finish — always true for plain linearizability, where such
// a read's window closes after the write's invocation holds the bound.
func (o *Online) observedValues() func(string) bool {
	if o.observed != nil {
		return func(v string) bool { _, ok := o.observed[v]; return ok }
	}
	seen := make(map[string]bool)
	for i := range o.window {
		if o.window[i].kind == Read && !o.window[i].pending {
			seen[o.window[i].value] = true
		}
	}
	return func(v string) bool { return seen[v] }
}

// drain settles every unprocessed deadline strictly below bound (every
// deadline when all is set) in canonical (hi, lo, arrival) order, then
// compacts the window. The canonical order makes the stage sequence — and
// therefore the verdict and States — a function of the submitted
// operations alone, independent of Advance slicing.
func (o *Online) drain(bound simtime.Time, all bool) {
	var due []int
	for i := range o.window {
		iv := &o.window[i]
		if iv.closed || (!all && (iv.pending || iv.hi >= bound)) {
			continue
		}
		due = append(due, i)
	}
	if len(due) == 0 {
		return
	}
	sort.Slice(due, func(a, b int) bool {
		x, y := &o.window[due[a]], &o.window[due[b]]
		if x.hi != y.hi {
			return x.hi < y.hi
		}
		if x.lo != y.lo {
			return x.lo < y.lo
		}
		return x.id < y.id
	})
	for _, di := range due {
		if !o.failed {
			o.stage(di)
			if o.opt.Yield != nil {
				o.opt.Yield()
			}
		}
		o.window[di].closed = true
	}
	kept := o.window[:0]
	for _, iv := range o.window {
		if !iv.closed {
			kept = append(kept, iv)
		}
	}
	o.window = kept
}

// stage processes one deadline: every frontier state either discards it
// from its early set (already linearized) or searches for the commit
// sequences that linearize it now. The next frontier is the deduplicated
// union; empty means no linearization order exists.
func (o *Online) stage(di int) {
	if o.opt.ApproxEps > 0 && o.stageApprox(di) {
		return
	}
	target := &o.window[di]
	nf := frontierBuilder{idx: make(map[string]int)}
	memo := make(map[string]bool)
	for _, s := range o.frontier {
		if p := indexOfID(s.early, target.id); p >= 0 {
			rest := make([]int, 0, len(s.early)-1)
			rest = append(rest, s.early[:p]...)
			rest = append(rest, s.early[p+1:]...)
			nf.emit(olState{early: rest, last: s.last, ell: s.ell})
			continue
		}
		o.commit(s, target, &nf, memo)
		if o.failed {
			return
		}
	}
	o.frontier = nf.finish()
	if len(o.frontier) == 0 {
		o.failed = true
		o.failReason = "no valid linearization order exists"
	}
}

// stageApprox is the ε-approximate fast path for a settling deadline. It
// applies when the frontier is a single state and every operation that
// could precede the target opens only inside the ApproxEps band below the
// target's deadline — concurrency below the monitor's timing precision.
// It then commits greedily with no memo, frontier builder, or dfs:
//
//   - in-band reads of the state's current value are linearized ahead of
//     the target in ascending-lo order, which loses no witnesses (a read
//     of the current value can always be exchanged earlier: it observes
//     the same value there and tightens no other operation's window);
//   - in-band writes are *pruned*: orders placing them ahead of the
//     target are abandoned unexplored. In-band reads of other values
//     could only precede the target via one of those writes, so the
//     write's prune covers them.
//
// Reports whether the stage was handled; false falls back to the exact
// search. Soundness: the surviving state is a real placement, so a final
// OK names a concrete witness order; every prune is counted, so a later
// failure reports ε-uncertain instead of a definite violation.
func (o *Online) stageApprox(di int) bool {
	if len(o.frontier) != 1 {
		return false
	}
	s := o.frontier[0]
	target := &o.window[di]
	if p := indexOfID(s.early, target.id); p >= 0 {
		// Already linearized ahead of its deadline: discard from the early
		// set — exact, no search needed.
		rest := make([]int, 0, len(s.early)-1)
		rest = append(rest, s.early[:p]...)
		rest = append(rest, s.early[p+1:]...)
		o.frontier[0].early = rest
		return true
	}
	band := target.hi.Add(-o.opt.ApproxEps)
	skipped := 0
	var pre []int // window indexes of in-band reads of s.last
	for i := range o.window {
		x := &o.window[i]
		if x.closed || x.id == target.id || x.lo > target.hi || indexOfID(s.early, x.id) >= 0 {
			continue
		}
		if x.pending && !o.finishing {
			continue // fate unresolved until Finish, never explorable here
		}
		if x.lo <= band {
			return false // opens outside the ε band: its order is searchable
		}
		if x.kind == Read && x.value == s.last {
			pre = append(pre, i)
		} else if x.kind == Write {
			skipped++
		}
	}
	sort.Slice(pre, func(a, b int) bool { return o.window[pre[a]].lo < o.window[pre[b]].lo })
	ns := s
	for _, i := range pre {
		var ok bool
		if ns, ok = o.place(ns, &o.window[i]); !ok {
			return false // greedy placement fails; let the exact stage decide
		}
	}
	var ok bool
	if ns, ok = o.place(ns, target); !ok || o.strands(ns, target.id) {
		return false
	}
	if len(pre) > 0 {
		early := make([]int, 0, len(s.early)+len(pre))
		early = append(early, s.early...)
		for _, i := range pre {
			early = append(early, o.window[i].id)
		}
		sort.Ints(early)
		ns.early = early
	}
	o.states++
	if o.states > o.opt.MaxStates {
		o.failed = true
		o.failReason = fmt.Sprintf("linearize: state budget (%d) exhausted", o.opt.MaxStates)
		return true
	}
	o.pruned += skipped
	o.frontier[0] = ns
	return true
}

// commit explores linearizing zero or more still-open operations and then
// the target, with greedy earliest-point placement per step. Each call is
// one search state, shared with the batch wrapper's accounting.
func (o *Online) commit(s olState, target *olIv, nf *frontierBuilder, memo map[string]bool) {
	o.states++
	if o.states > o.opt.MaxStates {
		o.failed = true
		o.failReason = fmt.Sprintf("linearize: state budget (%d) exhausted", o.opt.MaxStates)
		return
	}
	// A single hard stage can explore millions of states; the between-
	// stage yield in drain never runs inside it, so burst-capping needs a
	// yield on the state counter as well.
	if o.opt.Yield != nil && o.states&0xff == 0 {
		o.opt.Yield()
	}
	// string(o.keyBuf) in the map index does not allocate (compiler-
	// recognized idiom); only a first visit pays for the key copy. The
	// scratch is safe across the recursion below: the key is consumed
	// before commit re-enters.
	o.keyBuf = appendStateKey(o.keyBuf[:0], s)
	if memo[string(o.keyBuf)] {
		return
	}
	memo[string(o.keyBuf)] = true
	// Dominated-branch elimination: an open read of the state's current
	// value never needs its own branch. In every witness extending s it is
	// linearized before the next write (that is where it observes s.last),
	// and when the target is a read the placed-now and placed-later orders
	// converge on the same state — the reads change neither the value nor
	// any later placement's feasibility (their lo is at most target.hi,
	// which every still-open window reaches past). Committing them all
	// greedily in ascending-lo order therefore loses no witnesses, and it
	// removes the 2^reads branching that made hot-key windows under
	// pipelined load exhaust the state budget.
	var greedy []int
	for i := range o.window {
		x := &o.window[i]
		if x.closed || x.id == target.id || x.lo > target.hi {
			continue
		}
		if x.pending && !o.finishing {
			continue
		}
		if x.kind != Read || x.value != s.last {
			continue
		}
		if indexOfID(s.early, x.id) >= 0 {
			continue
		}
		greedy = append(greedy, i)
	}
	if len(greedy) > 0 {
		sort.Slice(greedy, func(a, b int) bool { return o.window[greedy[a]].lo < o.window[greedy[b]].lo })
		ns := s
		early := make([]int, len(s.early), len(s.early)+len(greedy))
		copy(early, s.early)
		for _, i := range greedy {
			var ok bool
			if ns, ok = o.place(ns, &o.window[i]); !ok {
				// ℓ only grows along any extension, so a read unplaceable
				// here is unplaceable in every extension: dead state.
				return
			}
			early = append(early, o.window[i].id)
		}
		sort.Ints(early)
		ns.early = early
		s = ns
	}
	if ns, ok := o.place(s, target); ok && !o.strands(ns, target.id) {
		nf.emit(ns)
	}
	for i := range o.window {
		x := &o.window[i]
		if x.closed || x.id == target.id || x.lo > target.hi {
			continue
		}
		if x.pending && !o.finishing {
			continue // fate (drop vs forced) unresolved until Finish
		}
		if indexOfID(s.early, x.id) >= 0 {
			continue
		}
		ns, ok := o.place(s, x)
		if !ok {
			continue
		}
		early := make([]int, 0, len(s.early)+1)
		early = append(early, s.early...)
		early = append(early, x.id)
		sort.Ints(early)
		ns.early = early
		if o.strands(ns, -1) {
			continue
		}
		o.commit(ns, target, nf, memo)
		if o.failed {
			return
		}
	}
}

// place linearizes iv next in state s at the earliest feasible point,
// returning the successor state (early is aliased; callers copy).
func (o *Online) place(s olState, iv *olIv) (olState, bool) {
	point := iv.lo
	if s.ell > point {
		point = s.ell
	}
	if point > iv.hi {
		return olState{}, false
	}
	last := s.last
	switch iv.kind {
	case Write:
		last = iv.value
	case Read:
		if iv.value != last {
			return olState{}, false
		}
	}
	ell := s.ell
	if iv.lo > ell {
		ell = iv.lo
	}
	return olState{early: s.early, last: last, ell: ell}, true
}

// strands reports whether some open operation outside the state's early
// set (and other than exclude) can no longer be placed: its window closes
// below the state's point lower bound. Such states are dead. Operations
// not yet submitted can never trigger this — their windows close at or
// beyond every processed bound — so the answer does not depend on Advance
// slicing.
func (o *Online) strands(ns olState, exclude int) bool {
	for i := range o.window {
		x := &o.window[i]
		if x.closed || x.id == exclude || x.hi >= ns.ell {
			continue
		}
		if indexOfID(ns.early, x.id) < 0 {
			return true
		}
	}
	return false
}

// frontierBuilder accumulates emitted states, merging duplicates by
// (early, last) with the dominating (minimum) ℓ, and yields them in a
// canonical order. Keys use the same injective varint encoding as the
// memo (minus ℓ, which deduplication folds): emit sits on the stage hot
// path, and decimal key formatting showed up in live-monitoring profiles.
type frontierBuilder struct {
	idx    map[string]int
	keys   []string
	out    []olState
	keyBuf []byte
}

func (b *frontierBuilder) emit(s olState) {
	k := binary.AppendUvarint(b.keyBuf[:0], uint64(len(s.early)))
	for _, id := range s.early {
		k = binary.AppendUvarint(k, uint64(id))
	}
	k = append(k, s.last...)
	b.keyBuf = k
	if i, ok := b.idx[string(k)]; ok {
		if s.ell < b.out[i].ell {
			b.out[i].ell = s.ell
		}
		return
	}
	key := string(k)
	b.idx[key] = len(b.out)
	b.keys = append(b.keys, key)
	b.out = append(b.out, s)
}

func (b *frontierBuilder) finish() []olState {
	sort.Sort(byKey{b})
	return b.out
}

type byKey struct{ b *frontierBuilder }

func (s byKey) Len() int           { return len(s.b.out) }
func (s byKey) Less(i, j int) bool { return s.b.keys[i] < s.b.keys[j] }
func (s byKey) Swap(i, j int) {
	s.b.keys[i], s.b.keys[j] = s.b.keys[j], s.b.keys[i]
	s.b.out[i], s.b.out[j] = s.b.out[j], s.b.out[i]
}

// appendStateKey renders a state for the per-stage memo. Unlike frontier
// deduplication, the memo must distinguish ℓ values: a later-visited state
// with a smaller ℓ has strictly more continuations. The encoding is a
// count-prefixed varint sequence (injective: every field before the
// variable-length value string is self-delimiting) rather than decimal
// text — memo-key construction sits on the commit hot path, and decimal
// formatting of large ids dominated live-monitoring CPU profiles.
func appendStateKey(dst []byte, s olState) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s.early)))
	for _, id := range s.early {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	dst = binary.AppendVarint(dst, int64(s.ell))
	dst = append(dst, s.last...)
	return dst
}

// indexOfID finds id in the ascending slice, or -1.
func indexOfID(ids []int, id int) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return lo
	}
	return -1
}
