package linearize

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// randSeqHistory draws a small random register history shaped for the
// sequential-consistency checkers: per-node operations are sequential by
// construction (a per-node clock), values are unique and never the initial
// one, reads pick any value seen so far (stale reads are the point — legal
// under SC), with occasional duplicate writes, reads of never-written
// values, and a final pending operation per node. When overlap is set, an
// operation's invocation is occasionally pulled before its predecessor's
// response, making program order undefined at that node; when dup is set,
// an already-written value is occasionally written again (the Θ-bounded
// soundness test clears both: its spec assumes unique writes, and its
// response-order feed needs well-defined program order).
func randSeqHistory(r *rand.Rand, overlap, dup bool) []Op {
	nNodes := 1 + r.Intn(3)
	clock := make([]simtime.Time, nNodes)
	values := []string{"v0"}
	written := []string{}
	var ops []Op
	n := 3 + r.Intn(8)
	for i := 0; i < n; i++ {
		node := r.Intn(nNodes)
		inv := clock[node].Add(simtime.Duration(r.Intn(20)))
		res := inv.Add(simtime.Duration(1 + r.Intn(20)))
		clock[node] = res
		switch k := r.Intn(10); {
		case k < 4: // fresh write
			v := fmt.Sprintf("w%d", len(written))
			written = append(written, v)
			values = append(values, v)
			ops = append(ops, Op{Node: ta.NodeID(node), Kind: Write, Value: v, Inv: inv, Res: res})
		case k == 4 && dup && len(written) > 0: // duplicate write (never of v0)
			v := written[r.Intn(len(written))]
			ops = append(ops, Op{Node: ta.NodeID(node), Kind: Write, Value: v, Inv: inv, Res: res})
		case k == 5: // read of a value nobody writes
			ops = append(ops, Op{Node: ta.NodeID(node), Kind: Read, Value: "ghost", Inv: inv, Res: res})
		default: // read of any value seen so far (possibly stale)
			ops = append(ops, Op{Node: ta.NodeID(node), Kind: Read, Value: values[r.Intn(len(values))], Inv: inv, Res: res})
		}
	}
	if overlap && len(ops) > 1 && r.Intn(4) == 0 {
		i := 1 + r.Intn(len(ops)-1)
		if ops[i].Inv > 6 {
			ops[i].Inv = ops[i].Inv.Add(-simtime.Duration(2 + 2*r.Intn(3)))
		}
	}
	// A node's last operation may be caught in flight.
	if r.Intn(4) == 0 {
		node := ta.NodeID(r.Intn(nNodes))
		for i := len(ops) - 1; i >= 0; i-- {
			if ops[i].Node == node {
				ops[i].Res = simtime.Never
				break
			}
		}
	}
	return ops
}

// The cluster-graph engine must agree with the brute-force interleaving
// oracle on every random history; disagreements are shrunk to a locally
// minimal witness before reporting.
func TestSeqOnlineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 800; trial++ {
		ops := randSeqHistory(r, true, true)
		got := CheckSequentiallyConsistent(ops, "v0")
		want := checkSCOracle(ops, "v0")
		if got.OK != want.OK {
			min := shrinkWith(ops, func(h []Op) bool {
				return CheckSequentiallyConsistent(h, "v0").OK != checkSCOracle(h, "v0").OK
			})
			t.Fatalf("trial %d: engine=%v (%s) oracle=%v (%s)\nminimal witness:\n%v",
				trial, got.OK, got.Reason, want.OK, want.Reason, min)
		}
	}
}

// Θ-bounded sequential consistency is pure sequential consistency plus
// extra staleness conditions, so an accepting Θ-bounded run implies the
// pure checker accepts too — the property that the window GC (settling and
// committing clusters mid-stream) never unsoundly accepts. The feed
// replays the monitor's shape: Begin at invocation, Add at response, in
// global response order, with periodic watermark advances.
func TestSeqOnlineStaleBoundSound(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 800; trial++ {
		ops := randSeqHistory(r, false, false)
		theta := simtime.Duration(1 + r.Intn(40))

		type ev struct {
			t     simtime.Time
			begin bool
			op    Op
		}
		var evs []ev
		var pend []Op
		for _, o := range ops {
			evs = append(evs, ev{t: o.Inv, begin: true, op: o})
			if o.Pending() {
				pend = append(pend, o)
			} else {
				evs = append(evs, ev{t: o.Res, op: o})
			}
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

		s := NewSeqOnline(SeqOptions{Initial: "v0", MaxStale: theta})
		for i, e := range evs {
			if e.begin {
				s.Begin(e.op.Node, e.op.Inv)
			} else {
				s.Add(e.op)
			}
			if i%3 == 2 {
				s.Advance(e.t)
			}
		}
		for _, o := range pend {
			s.Add(o)
		}
		bounded := s.Finish()
		pure := CheckSequentiallyConsistent(ops, "v0")
		if bounded.OK && !pure.OK {
			t.Fatalf("trial %d (Θ=%v): bounded accepted, pure rejected (%s)\n%v",
				trial, theta, pure.Reason, ops)
		}
	}
}

// In the pure mode (MaxStale = 0) the feed slicing is irrelevant: the
// monitor-shaped feed returns the identical Result to the batch replay,
// States included — the online == batch parity E14 asserts in-suite.
func TestSeqOnlinePureFeedParity(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for trial := 0; trial < 400; trial++ {
		ops := randSeqHistory(r, false, true)
		type ev struct {
			t     simtime.Time
			begin bool
			op    Op
		}
		var evs []ev
		var pend []Op
		for _, o := range ops {
			evs = append(evs, ev{t: o.Inv, begin: true, op: o})
			if o.Pending() {
				pend = append(pend, o)
			} else {
				evs = append(evs, ev{t: o.Res, op: o})
			}
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		s := NewSeqOnline(SeqOptions{Initial: "v0"})
		for i, e := range evs {
			if e.begin {
				s.Begin(e.op.Node, e.op.Inv)
			} else {
				s.Add(e.op)
			}
			if i%4 == 3 {
				s.Advance(e.t)
			}
		}
		for _, o := range pend {
			s.Add(o)
		}
		got := s.Finish()
		want := CheckSequentiallyConsistent(ops, "v0")
		if got.OK != want.OK || got.States != want.States {
			t.Fatalf("trial %d: online=%+v batch=%+v\n%v", trial, got, want, ops)
		}
	}
}
