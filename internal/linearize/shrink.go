package linearize

// Shrink reduces a non-linearizable history to a locally minimal violating
// sub-history: removing any single remaining operation makes it
// linearizable (or structurally invalid). Minimal counterexamples turn a
// "no valid linearization order exists" verdict into something a human can
// read — typically the two or three operations of a new/old inversion.
//
// Shrink returns the input unchanged if the history is linearizable or
// invalid to begin with.
func Shrink(ops []Op, opt Options) []Op {
	violates := func(h []Op) bool {
		if validateHistory(h, opt.Initial) != nil {
			return false // structurally invalid ≠ a violation witness
		}
		return !Check(h, opt).OK
	}
	return shrinkWith(ops, violates)
}

// ShrinkSeq is Shrink against the sequential-consistency checker: it
// reduces a non-sequentially-consistent history to a locally minimal
// violating sub-history. A counterexample here is stronger than a
// linearizability one — the history admits no total order at all, even
// ignoring real time — so the witness is usually a program-order cycle.
func ShrinkSeq(ops []Op, initial string) []Op {
	violates := func(h []Op) bool {
		return !CheckSequentiallyConsistent(h, initial).OK
	}
	return shrinkWith(ops, violates)
}

// ShrinkObject is Shrink for generic object histories.
func ShrinkObject(ops []GOp, m Model, opt Options) []GOp {
	violates := func(h []GOp) bool {
		return !CheckObject(h, m, opt).OK
	}
	return shrinkWith(ops, violates)
}

// shrinkWith greedily removes elements while the predicate still holds,
// repeating until no single removal preserves it.
func shrinkWith[T any](ops []T, violates func([]T) bool) []T {
	if !violates(ops) {
		return ops
	}
	cur := make([]T, len(ops))
	copy(cur, ops)
	for {
		removed := false
		for i := 0; i < len(cur); i++ {
			cand := make([]T, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if violates(cand) {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			return cur
		}
	}
}
