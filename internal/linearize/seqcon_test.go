package linearize

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestSCLinearizableImpliesSC(t *testing.T) {
	// Linearizability implies sequential consistency: every linearizable
	// random history must also be SC.
	r := rand.New(rand.NewSource(21))
	checked := 0
	for trial := 0; trial < 500 && checked < 60; trial++ {
		ops := randSequentialPerNode(r)
		if !CheckLinearizable(ops, "v0").OK {
			continue
		}
		checked++
		if sc := CheckSequentiallyConsistent(ops, "v0"); !sc.OK {
			t.Fatalf("linearizable but not SC: %s\n%v", sc.Reason, ops)
		}
	}
	if checked == 0 {
		t.Fatal("no linearizable samples generated")
	}
}

// randSequentialPerNode draws a history whose per-node operations never
// overlap (the alternation condition SC's program order needs).
func randSequentialPerNode(r *rand.Rand) []Op {
	nNodes := 2 + r.Intn(2)
	values := []string{"v0"}
	var ops []Op
	vi := 0
	for n := 0; n < nNodes; n++ {
		t := simtime.Time(r.Intn(10))
		k := 1 + r.Intn(3)
		for i := 0; i < k; i++ {
			dur := simtime.Duration(1 + r.Intn(20))
			if r.Intn(2) == 0 {
				v := fmt.Sprintf("w%d", vi)
				vi++
				values = append(values, v)
				ops = append(ops, Op{Node: ta.NodeID(n), Kind: Write, Value: v, Inv: t, Res: t.Add(dur)})
			} else {
				ops = append(ops, Op{Node: ta.NodeID(n), Kind: Read, Value: values[r.Intn(len(values))], Inv: t, Res: t.Add(dur)})
			}
			t = t.Add(dur + simtime.Duration(1+r.Intn(15)))
		}
	}
	return ops
}

func TestSCAllowsStaleReads(t *testing.T) {
	// The classic SC-but-not-linearizable history: a read strictly after a
	// completed write still returns the old value — fine under SC (the
	// read is ordered before the write in the total order).
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "v0", 20, 30),
	}
	if CheckLinearizable(ops, "v0").OK {
		t.Fatal("unexpectedly linearizable")
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); !sc.OK {
		t.Fatalf("stale read rejected under SC: %s", sc.Reason)
	}
}

func TestSCRejectsProgramOrderViolation(t *testing.T) {
	// One node writes a then reads v0: program order forbids ordering the
	// read before its own write.
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(0, Read, "v0", 20, 30),
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); sc.OK {
		t.Fatal("read-own-write violation accepted")
	}
}

func TestSCRejectsIncoherence(t *testing.T) {
	// Two nodes observing two writes in opposite orders: no single total
	// order exists.
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Write, "b", 0, 10),
		op(2, Read, "a", 20, 30),
		op(2, Read, "b", 40, 50),
		op(3, Read, "b", 20, 30),
		op(3, Read, "a", 40, 50),
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); sc.OK {
		t.Fatal("incoherent observation orders accepted")
	}
}

func TestSCPendingOps(t *testing.T) {
	// A pending write may or may not be observed.
	ops := []Op{
		op(0, Write, "a", 0, simtime.Never),
		op(1, Read, "a", 20, 30),
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); !sc.OK {
		t.Fatalf("observed pending write rejected: %s", sc.Reason)
	}
	ops[1].Value = "v0"
	if sc := CheckSequentiallyConsistent(ops, "v0"); !sc.OK {
		t.Fatalf("unobserved pending write rejected: %s", sc.Reason)
	}
	// A pending read is dropped.
	ops = append(ops, Op{Node: 2, Kind: Read, Value: "", Inv: 5, Res: simtime.Never})
	if sc := CheckSequentiallyConsistent(ops, "v0"); !sc.OK {
		t.Fatalf("pending read broke SC: %s", sc.Reason)
	}
}

func TestSCOverlapAtNodeRejected(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 100),
		op(0, Read, "a", 50, 60), // overlaps its own node's write
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); sc.OK {
		t.Fatal("overlapping per-node ops accepted")
	}
}

func TestSCDuplicateWriteRejected(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Write, "a", 20, 30),
	}
	if sc := CheckSequentiallyConsistent(ops, "v0"); sc.OK {
		t.Fatal("duplicate write accepted")
	}
}

func TestSCEmpty(t *testing.T) {
	if sc := CheckSequentiallyConsistent(nil, "v0"); !sc.OK {
		t.Fatal("empty rejected")
	}
}
