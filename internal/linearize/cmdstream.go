package linearize

import (
	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Checker command capture and replay. A Recorder stands in for a real
// checker behind register.Monitor and records the exact Checker call
// stream a run produces; Replay then drives any Checker with that stream.
// pscbench uses the pair to measure checker throughput in isolation:
// capture once from a real executor run, then replay the identical
// command sequence through the sequential, sharded, and approximate
// checkers — same inputs, so the wall-clock ratio is the checker speedup,
// not an executor artifact.

// CmdKind discriminates recorded Checker calls.
type CmdKind int

// The recorded call kinds; Finish is implied by the end of the stream.
const (
	CmdBegin CmdKind = iota
	CmdAdd
	CmdAdvance
)

// Cmd is one recorded Checker call.
type Cmd struct {
	Kind CmdKind
	Key  string
	Node ta.NodeID
	Time simtime.Time // Begin invocation or Advance watermark
	Op   Op           // Add payload
}

// Recorder is a Checker that appends every call to Cmds and always
// reports OK.
type Recorder struct {
	Cmds []Cmd
}

var _ Checker = (*Recorder)(nil)

// Begin implements Checker.
func (r *Recorder) Begin(key string, node ta.NodeID, inv simtime.Time) {
	r.Cmds = append(r.Cmds, Cmd{Kind: CmdBegin, Key: key, Node: node, Time: inv})
}

// Add implements Checker.
func (r *Recorder) Add(key string, op Op) {
	r.Cmds = append(r.Cmds, Cmd{Kind: CmdAdd, Key: key, Op: op})
}

// Advance implements Checker.
func (r *Recorder) Advance(watermark simtime.Time) {
	r.Cmds = append(r.Cmds, Cmd{Kind: CmdAdvance, Time: watermark})
}

// Finish implements Checker.
func (r *Recorder) Finish() Result { return Result{OK: true} }

// Replay drives c with the recorded stream and returns its Finish result.
func Replay(cmds []Cmd, c Checker) Result {
	return ReplaySampled(cmds, c, 0, nil)
}

// ReplaySampled is Replay with a mid-stream observation hook: sample runs
// after every stride commands and once more after the last command,
// before Finish. Finish is where checkers release their in-flight state,
// so an after-the-fact measurement of a replay sees an empty heap; the
// hook is the only place the replay's peak liveness is observable.
// stride < 1 or a nil sample disables sampling.
func ReplaySampled(cmds []Cmd, c Checker, stride int, sample func()) Result {
	if sample == nil {
		stride = 0
	}
	next := stride
	for i := range cmds {
		m := &cmds[i]
		switch m.Kind {
		case CmdBegin:
			c.Begin(m.Key, m.Node, m.Time)
		case CmdAdd:
			c.Add(m.Key, m.Op)
		case CmdAdvance:
			c.Advance(m.Time)
		}
		if stride > 0 && i+1 == next {
			sample()
			next += stride
		}
	}
	if sample != nil {
		sample()
	}
	return c.Finish()
}
