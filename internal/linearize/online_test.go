package linearize

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// randAlternating generates a random history that respects per-node
// alternation (one operation at a time per node, the contract Begin
// documents and register.History guarantees), with cross-node concurrency,
// occasional pending operations, and occasional structural violations
// (duplicate writes, reads of never-written values) to exercise the
// validation paths.
func randAlternating(r *rand.Rand) []Op {
	nodes := 2 + r.Intn(3)
	var written []string
	var ops []Op
	wseq := 0
	for n := 0; n < nodes; n++ {
		now := simtime.Time(r.Intn(20))
		k := 1 + r.Intn(4)
		for i := 0; i < k; i++ {
			inv := now
			res := inv.Add(simtime.Duration(1 + r.Intn(30)))
			pending := r.Intn(12) == 0
			if pending {
				res = simtime.Never
			}
			if r.Intn(2) == 0 {
				v := fmt.Sprintf("w%d", wseq)
				wseq++
				if r.Intn(20) == 0 && len(written) > 0 {
					v = written[r.Intn(len(written))] // duplicate write
				}
				written = append(written, v)
				ops = append(ops, Op{Node: ta.NodeID(n), Kind: Write, Value: v, Inv: inv, Res: res})
			} else {
				v := "v0"
				switch {
				case r.Intn(25) == 0:
					v = fmt.Sprintf("zz%d", r.Intn(3)) // never written
				case len(written) > 0 && r.Intn(4) != 0:
					v = written[r.Intn(len(written))]
				}
				ops = append(ops, Op{Node: ta.NodeID(n), Kind: Read, Value: v, Inv: inv, Res: res})
			}
			if pending {
				break // the node never got its response; it issues nothing more
			}
			now = res.Add(simtime.Duration(r.Intn(10)))
		}
	}
	return ops
}

// completionOrder returns the history in canonical streaming order: by
// response time (pending last), the order a monitor submits operations.
func completionOrder(ops []Op) []Op {
	seq := append([]Op(nil), ops...)
	sort.SliceStable(seq, func(i, j int) bool {
		if seq[i].Res != seq[j].Res {
			return seq[i].Res < seq[j].Res
		}
		if seq[i].Inv != seq[j].Inv {
			return seq[i].Inv < seq[j].Inv
		}
		return seq[i].Node < seq[j].Node
	})
	return seq
}

// replayOnline drives the online checker through seq with a randomized but
// contract-respecting schedule: Begin at each invocation, Add at each
// response (seq order), and Advance calls interleaved at valid watermarks.
func replayOnline(r *rand.Rand, seq []Op, opt Options) Result {
	type ev struct {
		at     simtime.Time
		isAdd  bool
		seqIdx int
	}
	var evs []ev
	for i, op := range seq {
		evs = append(evs, ev{at: op.Inv, isAdd: false, seqIdx: i})
		evs = append(evs, ev{at: op.Res, isAdd: true, seqIdx: i})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		if evs[a].isAdd != evs[b].isAdd {
			return !evs[a].isAdd // invocations precede responses at an instant
		}
		return evs[a].seqIdx < evs[b].seqIdx
	})
	o := NewOnline(opt)
	for i, e := range evs {
		if e.isAdd {
			if e.at == simtime.Never {
				break // pending tail: submit below, right before Finish
			}
			o.Add(seq[e.seqIdx])
		} else {
			o.Begin(seq[e.seqIdx].Node, seq[e.seqIdx].Inv)
		}
		switch r.Intn(3) {
		case 0:
			o.Advance(e.at)
		case 1:
			if i+1 < len(evs) && evs[i+1].at != simtime.Never {
				o.Advance(evs[i+1].at)
			}
		}
	}
	for _, op := range seq {
		if op.Pending() {
			o.Add(op)
		}
	}
	return o.Finish()
}

// randOnlineOptions varies the checking mode across the batch entry
// points' parameter space.
func randOnlineOptions(r *rand.Rand) Options {
	opt := Options{Initial: "v0"}
	switch r.Intn(4) {
	case 1:
		opt.Widen = simtime.Duration(1 + r.Intn(10))
	case 2:
		opt.MinAfterInv = simtime.Duration(1 + r.Intn(10))
	case 3:
		opt.ShiftFuture = simtime.Duration(1 + r.Intn(10))
	}
	if r.Intn(10) == 0 {
		opt.MaxStates = 1 + r.Intn(50) // exercise the budget verdict too
	}
	if r.Intn(8) == 0 {
		opt.AssumeUnique = true
	}
	return opt
}

// TestOnlineMatchesBatch is the streaming/batch differential property: on
// randomized histories, under randomized Advance schedules, the online
// checker's Result — OK, Reason, and States — is byte-identical to the
// batch Check over the same operation sequence. Mismatches are minimized
// with the Shrink machinery before reporting.
func TestOnlineMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 1500; trial++ {
		ops := randAlternating(r)
		opt := randOnlineOptions(r)
		if opt.AssumeUnique && validateHistory(ops, opt.Initial) != nil {
			opt.AssumeUnique = false // uniqueness-trusting mode needs a clean history
		}
		seq := completionOrder(ops)
		want := Check(seq, opt)
		sched := rand.New(rand.NewSource(int64(trial)))
		got := replayOnline(sched, seq, opt)
		if got == want {
			continue
		}
		mismatch := func(h []Op) bool {
			hs := completionOrder(h)
			return Check(hs, opt) != replayOnline(rand.New(rand.NewSource(int64(trial))), hs, opt)
		}
		small := shrinkWith(seq, mismatch)
		t.Fatalf("trial %d: online %+v != batch %+v\nopts: %+v\nminimized history:\n%v",
			trial, got, want, opt, small)
	}
}

// TestOnlineScheduleIndependence pins that two different Advance slicings
// produce identical Results — the verdict is a function of the submitted
// operations alone.
func TestOnlineScheduleIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		seq := completionOrder(randAlternating(r))
		opt := randOnlineOptions(r)
		if opt.AssumeUnique && validateHistory(seq, opt.Initial) != nil {
			opt.AssumeUnique = false
		}
		a := replayOnline(rand.New(rand.NewSource(1)), seq, opt)
		b := replayOnline(rand.New(rand.NewSource(2)), seq, opt)
		if a != b {
			t.Fatalf("trial %d: schedules disagree: %+v vs %+v\n%v", trial, a, b, seq)
		}
	}
}

// TestOnlineEntryPointParity replays through the exported batch wrappers,
// confirming CheckLinearizable/CheckEps/CheckSuperLinearizable all route
// through the one engine with their documented option mappings.
func TestOnlineEntryPointParity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		seq := completionOrder(randAlternating(r))
		eps := simtime.Duration(1 + r.Intn(8))
		if got, want := CheckLinearizable(seq, "v0"), Check(seq, Options{Initial: "v0"}); got != want {
			t.Fatalf("CheckLinearizable: %+v != %+v", got, want)
		}
		if got, want := CheckEps(seq, "v0", eps), Check(seq, Options{Initial: "v0", Widen: eps}); got != want {
			t.Fatalf("CheckEps: %+v != %+v", got, want)
		}
		if got, want := CheckSuperLinearizable(seq, "v0", eps), Check(seq, Options{Initial: "v0", MinAfterInv: 2 * eps}); got != want {
			t.Fatalf("CheckSuperLinearizable: %+v != %+v", got, want)
		}
	}
}

// TestOnlineGC pins the O(window) property: with a steadily advancing
// watermark, settled operations leave the window instead of accumulating.
func TestOnlineGC(t *testing.T) {
	o := NewOnline(Options{Initial: "v0", AssumeUnique: true})
	const n = 10000
	maxWindow := 0
	for i := 0; i < n; i++ {
		inv := simtime.Time(i * 20)
		res := inv.Add(10)
		v := fmt.Sprintf("w%d", i)
		o.Begin(0, inv)
		o.Add(Op{Node: 0, Kind: Write, Value: v, Inv: inv, Res: res})
		o.Begin(1, inv.Add(11))
		o.Add(Op{Node: 1, Kind: Read, Value: v, Inv: inv.Add(11), Res: inv.Add(19)})
		o.Advance(simtime.Time((i + 1) * 20))
		if len(o.window) > maxWindow {
			maxWindow = len(o.window)
		}
	}
	if maxWindow > 8 {
		t.Fatalf("window grew to %d entries on a sequential stream; GC is not engaging", maxWindow)
	}
	r := o.Finish()
	if !r.OK {
		t.Fatalf("sequential stream rejected: %+v", r)
	}
	if r.States > 3*2*n+10 {
		t.Fatalf("states %d exceed linear bound", r.States)
	}
}

// TestOnlineFlushExactBoundary pins the GC boundary: an operation whose
// deadline falls EXACTLY on the Advance watermark must not settle at that
// flush. Advance(w) promises only that no future invocation starts before
// w — an invocation at exactly w still produces a window overlapping a
// deadline at w, so the drain predicate is strictly hi < bound.
func TestOnlineFlushExactBoundary(t *testing.T) {
	o := NewOnline(Options{Initial: "v0"})
	o.Begin(0, 10)
	o.Add(Op{Node: 0, Kind: Write, Value: "w0", Inv: 10, Res: 20})
	o.Advance(20) // bound == hi: must hold the op
	if len(o.window) != 1 {
		t.Fatalf("op with hi == Advance bound settled early: window %d, want 1", len(o.window))
	}
	// A later invocation at exactly the old bound is still admissible and
	// must be orderable against the held op.
	o.Begin(1, 20)
	o.Add(Op{Node: 1, Kind: Read, Value: "w0", Inv: 20, Res: 25})
	o.Advance(26) // now strictly past both deadlines: everything settles
	if len(o.window) != 0 {
		t.Fatalf("window not drained past both deadlines: %d entries", len(o.window))
	}
	if r := o.Finish(); !r.OK {
		t.Fatalf("boundary stream rejected: %+v", r)
	}
}

// TestOnlineZeroWidthWindow pins instantaneous operations (Inv == Res):
// they are legal single-point windows, settle one tick past their instant,
// and fail with the batch checker's exact text when wrong.
func TestOnlineZeroWidthWindow(t *testing.T) {
	seq := []Op{
		{Node: 0, Kind: Write, Value: "w0", Inv: 10, Res: 10},
		{Node: 1, Kind: Read, Value: "w0", Inv: 12, Res: 12},
	}
	o := NewOnline(Options{Initial: "v0"})
	for _, op := range seq {
		o.Begin(op.Node, op.Inv)
		o.Add(op)
	}
	o.Advance(12) // the read's single point IS the bound: both ops held? no —
	// the write (hi 10 < 12) settles, the read (hi 12) is exactly at it.
	if len(o.window) != 1 {
		t.Fatalf("after Advance(12): window %d entries, want 1 (only the read held)", len(o.window))
	}
	o.Advance(13)
	if len(o.window) != 0 {
		t.Fatalf("zero-width read never settled: window %d entries", len(o.window))
	}
	if got, want := o.Finish(), Check(seq, Options{Initial: "v0"}); got != want {
		t.Fatalf("online %+v != batch %+v", got, want)
	}

	// A zero-width read of a never-written value must fail with the
	// sequential engine's verdict, Advance slicing notwithstanding.
	bad := []Op{{Node: 0, Kind: Read, Value: "ghost", Inv: 5, Res: 5}}
	o2 := NewOnline(Options{Initial: "v0"})
	o2.Begin(0, 5)
	o2.Add(bad[0])
	o2.Advance(6)
	if got, want := o2.Finish(), Check(bad, Options{Initial: "v0"}); got != want {
		t.Fatalf("zero-width failure: online %+v != batch %+v", got, want)
	}
}

// TestOnlineStraddlingFlushBounds pins an operation spanning several
// consecutive flush bounds: neighbours settle and leave the window around
// it, it survives every intermediate flush, and the final Result still
// matches the batch checker.
func TestOnlineStraddlingFlushBounds(t *testing.T) {
	seq := []Op{
		{Node: 0, Kind: Write, Value: "w0", Inv: 10, Res: 30}, // alive across the flushes at 20 and 25
		{Node: 1, Kind: Read, Value: "v0", Inv: 12, Res: 14},  // settles at the first flush
		{Node: 2, Kind: Read, Value: "w0", Inv: 42, Res: 44},  // arrives after the write settled
	}
	o := NewOnline(Options{Initial: "v0"})
	o.Begin(0, 10)
	o.Add(seq[0])
	o.Begin(1, 12)
	o.Add(seq[1])
	o.Advance(20) // first bound: the read (hi 14) settles, the write straddles
	if len(o.window) != 1 {
		t.Fatalf("after first flush: window %d entries, want 1 (the straddling write)", len(o.window))
	}
	o.Advance(25) // second bound, still inside [10,30]: the write must survive
	if len(o.window) != 1 {
		t.Fatalf("after second flush inside the write's window: window %d entries, want 1", len(o.window))
	}
	o.Advance(40) // past the deadline: the write settles
	if len(o.window) != 0 {
		t.Fatalf("after third flush: window %d entries, want 0", len(o.window))
	}
	o.Begin(2, 42)
	o.Add(seq[2])
	if got, want := o.Finish(), Check(seq, Options{Initial: "v0"}); got != want {
		t.Fatalf("online %+v != batch %+v", got, want)
	}
	if r := o.Finish(); !r.OK {
		t.Fatalf("straddling stream rejected: %+v", r)
	}
}
