package linearize

import (
	"math/rand"
	"testing"

	"psclock/internal/simtime"
)

// TestApproxSoundness is the three-valued-verdict property of the
// ε-approximate mode, checked against the exact engine on randomized
// histories:
//
//   - an approximate OK names a concrete witness order, so the exact
//     checker must accept too;
//   - an approximate failure with Pruned == 0 skipped nothing, so the
//     exact checker must reject too (together: Pruned == 0 means the OK
//     bit matches exactly);
//   - Result.Verdict must classify accordingly — a failure is only
//     allowed to soften to ε-uncertain when the band actually pruned.
//
// MaxStates is left at the default: a trial where the budgets diverge
// would make OK-bit comparisons meaningless.
func TestApproxSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	pruningTrials := 0
	for trial := 0; trial < 800; trial++ {
		seq := completionOrder(randAlternating(r))
		opt := randOnlineOptions(r)
		opt.MaxStates = 0
		if opt.AssumeUnique && validateHistory(seq, opt.Initial) != nil {
			opt.AssumeUnique = false
		}
		exact := Check(seq, opt)
		for _, eps := range []simtime.Duration{1, 5, 40} {
			aopt := opt
			aopt.ApproxEps = eps
			ap := Check(seq, aopt)
			if ap.Pruned > 0 {
				pruningTrials++
			}
			if ap.OK && !exact.OK {
				t.Fatalf("trial %d ε=%d: approx claims a witness, exact refutes: %+v vs %+v\nopts: %+v\n%v",
					trial, eps, ap, exact, opt, seq)
			}
			if !ap.OK && ap.Pruned == 0 && exact.OK {
				t.Fatalf("trial %d ε=%d: approx answers a definite no with nothing pruned on a linearizable history: %+v\nopts: %+v\n%v",
					trial, eps, ap, opt, seq)
			}
			v := ap.Verdict()
			switch {
			case ap.OK && v != Linearizable:
				t.Fatalf("trial %d ε=%d: OK result classified %v", trial, eps, v)
			case !ap.OK && ap.Pruned > 0 && v != EpsUncertain:
				t.Fatalf("trial %d ε=%d: pruned failure classified %v, want %v", trial, eps, v, EpsUncertain)
			case !ap.OK && ap.Pruned == 0 && v != NotLinearizable:
				t.Fatalf("trial %d ε=%d: unpruned failure classified %v, want %v", trial, eps, v, NotLinearizable)
			}
		}
	}
	// The property is vacuous if the fast path never engaged.
	if pruningTrials == 0 {
		t.Fatal("no trial ever pruned: the ε band never covered any concurrency, fast path untested")
	}
}

// TestApproxExactWhenEpsZero pins that ApproxEps = 0 is byte-for-byte the
// exact checker — the approximate machinery must be completely inert.
func TestApproxExactWhenEpsZero(t *testing.T) {
	r := rand.New(rand.NewSource(555))
	for trial := 0; trial < 300; trial++ {
		seq := completionOrder(randAlternating(r))
		opt := randOnlineOptions(r)
		if opt.AssumeUnique && validateHistory(seq, opt.Initial) != nil {
			opt.AssumeUnique = false
		}
		aopt := opt
		aopt.ApproxEps = 0
		if got, want := Check(seq, aopt), Check(seq, opt); got != want {
			t.Fatalf("trial %d: ε=0 result %+v != exact %+v", trial, got, want)
		}
	}
}

// TestApproxPrunesInBandWrites pins the fast path on a constructed
// history: with the band covering the whole run, an in-band concurrent
// write is skipped (counted in Pruned) while an in-band read of the
// current value is still placed exactly, keeping the verdict a true OK.
func TestApproxPrunesInBandWrites(t *testing.T) {
	seq := completionOrder([]Op{
		{Node: 0, Kind: Write, Value: "w0", Inv: 0, Res: 10},
		{Node: 1, Kind: Write, Value: "w1", Inv: 5, Res: 40},
		{Node: 2, Kind: Read, Value: "w0", Inv: 12, Res: 14},
	})
	opt := Options{Initial: "v0", ApproxEps: 1000}
	ap := Check(seq, opt)
	if !ap.OK {
		t.Fatalf("linearizable history rejected under ε: %+v", ap)
	}
	if ap.Pruned == 0 {
		t.Fatalf("in-band concurrent write was not pruned: %+v", ap)
	}
	exact := Check(seq, Options{Initial: "v0"})
	if !exact.OK {
		t.Fatalf("fixture not linearizable under the exact checker: %+v", exact)
	}
	if ap.States >= exact.States {
		t.Fatalf("fast path explored %d states, exact only %d — pruning saved nothing", ap.States, exact.States)
	}
}

// TestVerdictString pins the report vocabulary the bench and fuzz
// differentials grep for.
func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Linearizable:    "linearizable",
		NotLinearizable: "not-linearizable",
		EpsUncertain:    "eps-uncertain",
		Verdict(99):     "verdict(99)",
	} {
		if got := v.String(); got != want {
			t.Fatalf("Verdict(%d).String() = %q, want %q", v, got, want)
		}
	}
}
