package linearize

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Model is a sequential object specification for the generic checker: the
// paper's §6 closing remark generalizes the register result to other
// shared-memory objects, and this interface is what a history is checked
// against. States are canonical strings so the search can memoize them.
type Model interface {
	// Name identifies the object type.
	Name() string
	// Init returns the canonical encoding of the initial state.
	Init() string
	// Apply applies one operation to a state, returning the successor
	// state and the operation's result ("" for pure updates).
	Apply(state, op string) (newState, result string)
}

// GOp is one operation of a generic object history: the operation
// description (e.g. "inc", "add:3", "get"), the observed result, and the
// real-time window.
type GOp struct {
	Node   ta.NodeID
	Op     string
	Result string
	Inv    simtime.Time
	Res    simtime.Time
}

// Pending reports whether the operation never received its response.
func (o GOp) Pending() bool { return o.Res == simtime.Never }

// String implements fmt.Stringer.
func (o GOp) String() string {
	return fmt.Sprintf("%v %s=%q [%v, %v]", o.Node, o.Op, o.Result, o.Inv, o.Res)
}

// CheckObject decides whether the history is linearizable with respect to
// the sequential specification m, under the same Options as the register
// checker (MinAfterInv for superlinearizability, Widen for P_ε,
// ShiftFuture for P^δ).
//
// Unlike the register fast path, no uniqueness assumption is needed: this
// is a plain Wing-Gong search with greedy earliest-point assignment,
// memoized on (linearized set, object state). Pending operations are
// always offered both fates — linearized with an unbounded window, or
// dropped.
func CheckObject(ops []GOp, m Model, opt Options) Result {
	if opt.MaxStates == 0 {
		opt.MaxStates = 4 << 20
	}
	ivs := make([]gInterval, 0, len(ops))
	for _, o := range ops {
		iv := gInterval{op: o}
		lo := o.Inv.Add(opt.MinAfterInv)
		if opt.Widen > 0 {
			lo = lo.Add(-opt.Widen)
		}
		if lo < 0 {
			lo = 0
		}
		iv.lo = lo
		if o.Pending() {
			iv.hi = simtime.Never
			iv.optional = true
		} else {
			iv.hi = o.Res.Add(opt.Widen).Add(opt.ShiftFuture)
		}
		ivs = append(ivs, iv)
	}
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	c := &gChecker{ivs: ivs, model: m, maxStates: opt.MaxStates, memo: make(map[string]bool)}
	ok, reason := c.dfs(0, nil, m.Init())
	r := Result{OK: ok, States: c.states}
	if !ok {
		if reason == "" {
			reason = fmt.Sprintf("no valid linearization of the %s history exists", m.Name())
		}
		r.Reason = reason
	}
	return r
}

type gInterval struct {
	op       GOp
	lo, hi   simtime.Time
	optional bool // pending: may be dropped
}

type gChecker struct {
	ivs       []gInterval
	model     Model
	maxStates int
	states    int
	memo      map[string]bool
}

// gKey encodes (prefix, extras, dropped, state). Dropped pending ops are
// marked with a minus sign.
func gKey(prefix int, extras []int, dropped map[int]bool, state string) string {
	var b strings.Builder
	b.Grow(24 + 4*len(extras) + len(state))
	b.WriteString(strconv.Itoa(prefix))
	for _, e := range extras {
		b.WriteByte(',')
		if dropped[e] {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(e))
	}
	b.WriteByte('|')
	b.WriteString(state)
	return b.String()
}

// dfs mirrors the register checker's search: the linearized set is
// (prefix, extras); `dropped` marks pending ops decided to have never
// taken effect; `state` is the object's canonical state. The point lower
// bound L is the max lo over *linearized* (not dropped) ops.
func (c *gChecker) dfs(prefix int, extras []int, state string) (bool, string) {
	return c.dfsInner(prefix, extras, map[int]bool{}, state)
}

func (c *gChecker) dfsInner(prefix int, extras []int, dropped map[int]bool, state string) (bool, string) {
	c.states++
	if c.states > c.maxStates {
		return false, fmt.Sprintf("linearize: state budget (%d) exhausted", c.maxStates)
	}
	for len(extras) > 0 && extras[0] == prefix {
		extras = extras[1:]
		prefix++
	}
	if prefix == len(c.ivs) {
		return true, ""
	}
	key := gKey(prefix, extras, dropped, state)
	if done, seen := c.memo[key]; seen {
		return done, ""
	}

	inExtras := make(map[int]bool, len(extras))
	for _, e := range extras {
		inExtras[e] = true
	}
	var l simtime.Time
	for i := 0; i < prefix; i++ {
		if !dropped[i] && c.ivs[i].lo > l {
			l = c.ivs[i].lo
		}
	}
	for _, e := range extras {
		if !dropped[e] && c.ivs[e].lo > l {
			l = c.ivs[e].lo
		}
	}
	minHi := simtime.Never
	for i := prefix; i < len(c.ivs); i++ {
		if inExtras[i] || c.ivs[i].optional {
			continue
		}
		if c.ivs[i].hi < minHi {
			minHi = c.ivs[i].hi
		}
	}
	if minHi < l {
		c.memo[key] = false
		return false, ""
	}

	place := func(i int, drop bool) (bool, string) {
		newExtras := make([]int, 0, len(extras)+1)
		newExtras = append(newExtras, extras...)
		newExtras = append(newExtras, i)
		sort.Ints(newExtras)
		newDropped := dropped
		if drop {
			newDropped = make(map[int]bool, len(dropped)+1)
			for k := range dropped {
				newDropped[k] = true
			}
			newDropped[i] = true
		}
		next := state
		if !drop {
			var result string
			next, result = c.model.Apply(state, c.ivs[i].op.Op)
			if result != c.ivs[i].op.Result && !c.ivs[i].optional {
				return false, ""
			}
			if c.ivs[i].optional && c.ivs[i].op.Result != "" && result != c.ivs[i].op.Result {
				return false, ""
			}
		}
		return c.dfsInner(prefix, newExtras, newDropped, next)
	}

	for i := prefix; i < len(c.ivs); i++ {
		if inExtras[i] {
			continue
		}
		iv := c.ivs[i]
		if iv.lo > minHi {
			break
		}
		point := iv.lo.Max(l)
		if !iv.optional && point > iv.hi {
			continue
		}
		if ok, reason := place(i, false); ok {
			c.memo[key] = true
			return true, ""
		} else if reason != "" {
			return false, reason
		}
		if iv.optional {
			// A pending op may instead never take effect.
			if ok, reason := place(i, true); ok {
				c.memo[key] = true
				return true, ""
			} else if reason != "" {
				return false, reason
			}
		}
	}
	c.memo[key] = false
	return false, ""
}
