package linearize

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func TestShrinkNewOldInversion(t *testing.T) {
	// Pad a classic violation with unrelated linearizable traffic; Shrink
	// must isolate the core.
	ops := []Op{
		op(0, Write, "x1", 0, 5),
		op(1, Read, "x1", 10, 15),
		op(0, Write, "a", 100, 200), // the long write...
		op(1, Read, "a", 110, 120),  // ...seen new...
		op(1, Read, "x1", 130, 140), // ...then old: violation
		op(2, Write, "y", 300, 310),
		op(2, Read, "y", 320, 330),
	}
	if CheckLinearizable(ops, "v0").OK {
		t.Fatal("test history unexpectedly linearizable")
	}
	small := Shrink(ops, Options{Initial: "v0"})
	if len(small) >= len(ops) {
		t.Fatalf("no shrinkage: %d ops", len(small))
	}
	if len(small) > 4 {
		t.Errorf("shrunk to %d ops, expected ≤ 4:\n%v", len(small), small)
	}
	// Still a violation, and locally minimal.
	if CheckLinearizable(small, "v0").OK {
		t.Fatal("shrunk history is linearizable")
	}
	for i := range small {
		cand := append(append([]Op{}, small[:i]...), small[i+1:]...)
		if validateHistory(cand, "v0") != nil {
			continue
		}
		if !CheckLinearizable(cand, "v0").OK {
			t.Errorf("not minimal: removing op %d still violates", i)
		}
	}
}

func TestShrinkLeavesGoodHistoriesAlone(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "a", 20, 30),
	}
	small := Shrink(ops, Options{Initial: "v0"})
	if len(small) != len(ops) {
		t.Errorf("linearizable history shrunk to %d", len(small))
	}
}

func TestShrinkObjectCounter(t *testing.T) {
	ops := []GOp{
		gop(0, "add:2", "", 0, 10),
		gop(1, "get", "2", 20, 30),
		gop(0, "add:3", "", 40, 50),
		gop(1, "get", "2", 60, 70), // stale: violation
		gop(2, "get", "5", 80, 90),
	}
	if CheckObject(ops, cntModel{}, Options{Initial: "0"}).OK {
		t.Fatal("unexpectedly linearizable")
	}
	small := ShrinkObject(ops, cntModel{}, Options{Initial: "0"})
	if len(small) >= len(ops) {
		t.Fatalf("no shrinkage: %d", len(small))
	}
	if CheckObject(small, cntModel{}, Options{Initial: "0"}).OK {
		t.Fatal("shrunk history linearizable")
	}
}

// Property: shrinking always yields a violating sub-history whose removal
// candidates all pass.
func TestShrinkProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	found := 0
	for trial := 0; trial < 300 && found < 25; trial++ {
		n := 3 + r.Intn(6)
		values := []string{"v0"}
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			inv := simtime.Time(r.Intn(50))
			res := inv.Add(simtime.Duration(1 + r.Intn(25)))
			if r.Intn(2) == 0 {
				v := fmt.Sprintf("w%d", i)
				values = append(values, v)
				ops = append(ops, Op{Node: ta.NodeID(i % 3), Kind: Write, Value: v, Inv: inv, Res: res})
			} else {
				ops = append(ops, Op{Node: ta.NodeID(i % 3), Kind: Read, Value: values[r.Intn(len(values))], Inv: inv, Res: res})
			}
		}
		if CheckLinearizable(ops, "v0").OK {
			continue
		}
		found++
		small := Shrink(ops, Options{Initial: "v0"})
		if len(small) == 0 || CheckLinearizable(small, "v0").OK {
			t.Fatalf("bad shrink of:\n%v\n→\n%v", ops, small)
		}
		if len(small) > len(ops) {
			t.Fatal("shrink grew the history")
		}
	}
	if found == 0 {
		t.Fatal("generator produced no violations to shrink")
	}
}
