package linearize

import (
	"fmt"
	"math/rand"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func op(node int, k Kind, v string, inv, res simtime.Time) Op {
	return Op{Node: ta.NodeID(node), Kind: k, Value: v, Inv: inv, Res: res}
}

func TestEmptyHistory(t *testing.T) {
	r := CheckLinearizable(nil, "v0")
	if !r.OK {
		t.Errorf("empty history rejected: %s", r.Reason)
	}
}

func TestSequentialHistory(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "a", 20, 30),
		op(0, Write, "b", 40, 50),
		op(1, Read, "b", 60, 70),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("sequential history rejected: %s", r.Reason)
	}
}

func TestReadInitial(t *testing.T) {
	ops := []Op{
		op(0, Read, "v0", 0, 10),
		op(1, Write, "a", 20, 30),
		op(0, Read, "a", 40, 50),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("rejected: %s", r.Reason)
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Read of v0 strictly after write of a completed.
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "v0", 20, 30),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("stale read accepted")
	}
}

func TestConcurrentReadMaySeeEither(t *testing.T) {
	// Read overlaps the write: both old and new values are fine.
	for _, v := range []string{"v0", "a"} {
		ops := []Op{
			op(0, Write, "a", 0, 100),
			op(1, Read, v, 50, 60),
		}
		if r := CheckLinearizable(ops, "v0"); !r.OK {
			t.Errorf("concurrent read of %q rejected: %s", v, r.Reason)
		}
	}
}

func TestNewOldInversionRejected(t *testing.T) {
	// Two sequential reads during one long write: new-then-old is the
	// classic linearizability violation.
	ops := []Op{
		op(0, Write, "a", 0, 100),
		op(1, Read, "a", 10, 20),
		op(1, Read, "v0", 30, 40),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("new-old inversion accepted")
	}
	// Old-then-new is fine.
	ops2 := []Op{
		op(0, Write, "a", 0, 100),
		op(1, Read, "v0", 10, 20),
		op(1, Read, "a", 30, 40),
	}
	if r := CheckLinearizable(ops2, "v0"); !r.OK {
		t.Errorf("old-new rejected: %s", r.Reason)
	}
}

func TestWriteOrderForcedByReads(t *testing.T) {
	// Concurrent writes; overlapping reads pin their order to a-then-b.
	ops := []Op{
		op(0, Write, "a", 0, 100),
		op(1, Write, "b", 0, 100),
		op(2, Read, "a", 40, 60),
		op(2, Read, "b", 70, 180),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("rejected: %s", r.Reason)
	}
	// Reading a again after b is a violation (a was overwritten).
	ops = append(ops, op(2, Read, "a", 190, 200))
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("a-b-a read sequence accepted with unique writes")
	}
}

func TestReadsAfterQuiescencePinValue(t *testing.T) {
	// Both writes complete by 100; two sequential reads after 150 cannot
	// observe different values.
	ops := []Op{
		op(0, Write, "a", 0, 100),
		op(1, Write, "b", 0, 100),
		op(2, Read, "a", 150, 160),
		op(2, Read, "b", 170, 180),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("value change after write quiescence accepted")
	}
}

func TestValueWrittenTwiceRejected(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Write, "a", 20, 30),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("duplicate write values accepted")
	}
}

func TestReadOfUnwrittenRejected(t *testing.T) {
	ops := []Op{op(0, Read, "ghost", 0, 10)}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("read of unwritten value accepted")
	}
}

func TestPendingReadDropped(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "", 20, simtime.Never),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("pending read not dropped: %s", r.Reason)
	}
}

func TestPendingWriteObservedMustLinearize(t *testing.T) {
	// The pending write's value was read, so it must have taken effect.
	ops := []Op{
		op(0, Write, "a", 0, simtime.Never),
		op(1, Read, "a", 20, 30),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("observed pending write rejected: %s", r.Reason)
	}
	// And it must respect its invocation: a read of "a" entirely before
	// the write's invocation is impossible.
	ops2 := []Op{
		op(0, Write, "a", 50, simtime.Never),
		op(1, Read, "a", 0, 10),
	}
	if r := CheckLinearizable(ops2, "v0"); r.OK {
		t.Error("read before pending write's invocation accepted")
	}
}

func TestPendingWriteUnobservedDropped(t *testing.T) {
	ops := []Op{
		op(0, Write, "a", 0, simtime.Never),
		op(1, Read, "v0", 100, 110),
	}
	if r := CheckLinearizable(ops, "v0"); !r.OK {
		t.Errorf("unobserved pending write not droppable: %s", r.Reason)
	}
}

func TestSuperLinearizability(t *testing.T) {
	eps := simtime.Duration(10)
	// Points must be ≥ Inv+2ε: a read whose whole window is inside
	// [Inv, Inv+2ε) is infeasible.
	ops := []Op{op(0, Read, "v0", 100, 110)}
	if r := CheckSuperLinearizable(ops, "v0", eps); r.OK {
		t.Error("too-short read accepted under superlinearizability")
	}
	ops = []Op{op(0, Read, "v0", 100, 125)}
	if r := CheckSuperLinearizable(ops, "v0", eps); !r.OK {
		t.Errorf("feasible superlinearizable read rejected: %s", r.Reason)
	}
	// ε = 0 degenerates to plain linearizability.
	if r := CheckSuperLinearizable(ops, "v0", 0); !r.OK {
		t.Errorf("ε=0 rejected: %s", r.Reason)
	}
}

func TestEpsWidening(t *testing.T) {
	// Stale read barely after a write: rejected plainly, accepted in P_ε
	// when ε covers the gap (the write window can slide over the read's).
	ops := []Op{
		op(0, Write, "a", 0, 10),
		op(1, Read, "v0", 14, 20),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("plain check accepted stale read")
	}
	if r := CheckEps(ops, "v0", 5); !r.OK {
		t.Errorf("P_ε check rejected: %s", r.Reason)
	}
	if r := CheckEps(ops, "v0", 1); r.OK {
		t.Error("P_ε with tiny ε accepted")
	}
}

func TestShiftFuture(t *testing.T) {
	// P^δ: response edges may move δ into the future. A read that
	// completed strictly before the write's invocation becomes placeable
	// after it once its window is allowed to stretch.
	ops := []Op{
		op(1, Read, "a", 0, 10),
		op(0, Write, "a", 20, 30),
	}
	if r := CheckLinearizable(ops, "v0"); r.OK {
		t.Error("plain check accepted")
	}
	if r := Check(ops, Options{Initial: "v0", ShiftFuture: 15}); !r.OK {
		t.Errorf("P^δ check rejected: %s", r.Reason)
	}
	if r := Check(ops, Options{Initial: "v0", ShiftFuture: 5}); r.OK {
		t.Error("P^δ with tiny δ accepted")
	}
}

// bruteForce tries every permutation with greedy point assignment: the
// reference implementation for small histories.
func bruteForce(ops []Op, initial string) bool {
	n := len(ops)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var perm func(k int) bool
	try := func(order []int) bool {
		val := initial
		var l simtime.Time
		for _, i := range order {
			o := ops[i]
			p := o.Inv.Max(l)
			if p > o.Res {
				return false
			}
			l = p
			if o.Kind == Write {
				val = o.Value
			} else if o.Value != val {
				return false
			}
		}
		return true
	}
	perm = func(k int) bool {
		if k == n {
			return try(idx)
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			if perm(k + 1) {
				idx[k], idx[i] = idx[i], idx[k]
				return true
			}
			idx[k], idx[i] = idx[i], idx[k]
		}
		return false
	}
	return perm(0)
}

func TestAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 2 + r.Intn(5)
		values := []string{"v0"}
		ops := make([]Op, 0, n)
		for i := 0; i < n; i++ {
			inv := simtime.Time(r.Intn(50))
			res := inv.Add(simtime.Duration(1 + r.Intn(30)))
			if r.Intn(2) == 0 {
				v := fmt.Sprintf("w%d", i)
				values = append(values, v)
				ops = append(ops, op(i%3, Write, v, inv, res))
			} else {
				ops = append(ops, op(i%3, Read, values[r.Intn(len(values))], inv, res))
			}
		}
		want := bruteForce(ops, "v0")
		got := CheckLinearizable(ops, "v0")
		if got.OK != want {
			t.Fatalf("trial %d: checker=%v brute=%v for:\n%v", trial, got.OK, want, ops)
		}
	}
}

func TestLongSequentialHistoryFast(t *testing.T) {
	// Thousands of strictly sequential ops must check in linear-ish time.
	var ops []Op
	val := "v0"
	ts := simtime.Time(0)
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			val = fmt.Sprintf("w%d", i)
			ops = append(ops, op(i%5, Write, val, ts, ts+10))
		} else {
			ops = append(ops, op(i%5, Read, val, ts, ts+10))
		}
		ts += 20
	}
	r := CheckLinearizable(ops, "v0")
	if !r.OK {
		t.Fatalf("rejected: %s", r.Reason)
	}
	if r.States > 3*len(ops)+10 {
		t.Errorf("states = %d, expected near-linear", r.States)
	}
}

func TestStateBudget(t *testing.T) {
	// A pathological all-concurrent history with an impossible read mix
	// should hit the budget rather than hang.
	var ops []Op
	for i := 0; i < 20; i++ {
		ops = append(ops, op(i, Write, fmt.Sprintf("w%d", i), 0, 1000))
	}
	// Interleaved contradictory reads force exhaustive search.
	ops = append(ops, op(21, Read, "w0", 2000, 2010))
	ops = append(ops, op(21, Read, "w1", 2020, 2030))
	ops = append(ops, op(21, Read, "w0", 2040, 2050))
	r := Check(ops, Options{Initial: "v0", MaxStates: 1000})
	if r.OK {
		t.Error("impossible history accepted")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Kind(9).String() != "kind(9)" {
		t.Error("Kind.String misbehaves")
	}
}

func TestOpString(t *testing.T) {
	s := op(1, Write, "a", 5, 10).String()
	if s == "" {
		t.Error("empty String")
	}
}
