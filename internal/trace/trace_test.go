package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func ev(name string, node int, kind ta.Kind, at simtime.Time) ta.Event {
	return ta.Event{Action: ta.Action{Name: name, Node: ta.NodeID(node), Peer: ta.NoNode, Kind: kind}, At: at}
}

func TestMinEpsIdentical(t *testing.T) {
	a := ta.Trace{ev("A", 0, ta.KindInput, 10), ev("B", 1, ta.KindOutput, 20)}
	eps, err := MinEps(a, a, ByNode)
	if err != nil || eps != 0 {
		t.Errorf("eps=%v err=%v", eps, err)
	}
}

func TestMinEpsShifted(t *testing.T) {
	a := ta.Trace{ev("A", 0, ta.KindInput, 10), ev("B", 1, ta.KindOutput, 20)}
	b := ta.Trace{ev("A", 0, ta.KindInput, 13), ev("B", 1, ta.KindOutput, 15)}
	eps, err := MinEps(a, b, ByNode)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 5 {
		t.Errorf("eps = %v, want 5", eps)
	}
	if ok, _ := EqEps(a, b, 5, ByNode); !ok {
		t.Error("EqEps(5) = false")
	}
	if ok, _ := EqEps(a, b, 4, ByNode); ok {
		t.Error("EqEps(4) = true")
	}
}

func TestEqEpsAllowsCrossNodeReorder(t *testing.T) {
	// Actions at different nodes may swap order under =_ε (only per-class
	// order is preserved).
	a := ta.Trace{ev("A", 0, ta.KindInput, 10), ev("B", 1, ta.KindOutput, 11)}
	b := ta.Trace{ev("B", 1, ta.KindOutput, 9), ev("A", 0, ta.KindInput, 12)}
	eps, err := MinEps(a, b, ByNode)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 2 {
		t.Errorf("eps = %v, want 2", eps)
	}
}

func TestEqEpsRejectsSameNodeReorder(t *testing.T) {
	a := ta.Trace{ev("A", 0, ta.KindInput, 10), ev("B", 0, ta.KindOutput, 11)}
	b := ta.Trace{ev("B", 0, ta.KindOutput, 10), ev("A", 0, ta.KindInput, 11)}
	if _, err := MinEps(a, b, ByNode); err == nil {
		t.Error("same-node reorder accepted")
	}
}

func TestEqEpsRejectsLabelMismatch(t *testing.T) {
	a := ta.Trace{ev("A", 0, ta.KindInput, 10)}
	b := ta.Trace{ev("C", 0, ta.KindInput, 10)}
	if _, err := MinEps(a, b, ByNode); err == nil {
		t.Error("label mismatch accepted")
	}
	c := ta.Trace{ev("A", 0, ta.KindInput, 10), ev("A", 0, ta.KindInput, 20)}
	if _, err := MinEps(a, c, ByNode); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMinDelta(t *testing.T) {
	a := ta.Trace{
		ev("READ", 0, ta.KindInput, 10),
		ev("RETURN", 0, ta.KindOutput, 20),
	}
	b := ta.Trace{
		ev("READ", 0, ta.KindInput, 10),
		ev("RETURN", 0, ta.KindOutput, 27),
	}
	d, err := MinDelta(a, b, OutputsByNode)
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Errorf("delta = %v, want 7", d)
	}
	if ok, _ := LeDelta(a, b, 7, OutputsByNode); !ok {
		t.Error("LeDelta(7) = false")
	}
	if ok, _ := LeDelta(a, b, 6, OutputsByNode); ok {
		t.Error("LeDelta(6) = true")
	}
}

func TestMinDeltaRejectsInputMove(t *testing.T) {
	a := ta.Trace{ev("READ", 0, ta.KindInput, 10)}
	b := ta.Trace{ev("READ", 0, ta.KindInput, 11)}
	if _, err := MinDelta(a, b, OutputsByNode); err == nil {
		t.Error("moved input accepted")
	}
}

func TestMinDeltaRejectsPastShift(t *testing.T) {
	a := ta.Trace{ev("RETURN", 0, ta.KindOutput, 20)}
	b := ta.Trace{ev("RETURN", 0, ta.KindOutput, 15)}
	if _, err := MinDelta(a, b, OutputsByNode); err == nil {
		t.Error("past shift accepted")
	}
}

func TestMinDeltaZeroForIdentical(t *testing.T) {
	a := ta.Trace{
		ev("READ", 0, ta.KindInput, 10),
		ev("RETURN", 0, ta.KindOutput, 20),
		ev("ACK", 1, ta.KindOutput, 30),
	}
	d, err := MinDelta(a, a, OutputsByNode)
	if err != nil || d != 0 {
		t.Errorf("delta=%v err=%v", d, err)
	}
}

func TestSortByTime(t *testing.T) {
	a := ta.Trace{
		ev("C", 0, ta.KindInput, 30),
		ev("A", 1, ta.KindInput, 10),
		ev("B", 2, ta.KindInput, 10),
	}
	s := SortByTime(a)
	got := strings.Join(s.Labels(), ",")
	if got != "A@n1,B@n2,C@n0" {
		t.Errorf("sorted = %s", got)
	}
	// Stability: A before B (same time, original order).
	if s[0].Action.Name != "A" || s[1].Action.Name != "B" {
		t.Error("stable order violated")
	}
	// Input unchanged.
	if a[0].Action.Name != "C" {
		t.Error("input mutated")
	}
}

func TestClassifiers(t *testing.T) {
	in := ta.Action{Name: "READ", Node: 2, Kind: ta.KindInput}
	out := ta.Action{Name: "RETURN", Node: 2, Kind: ta.KindOutput}
	if cl, ok := ByNode(in); !ok || cl != "n2" {
		t.Errorf("ByNode = %v %v", cl, ok)
	}
	if _, ok := OutputsByNode(in); ok {
		t.Error("input classified as output")
	}
	if cl, ok := OutputsByNode(out); !ok || cl != "n2" {
		t.Errorf("OutputsByNode = %v %v", cl, ok)
	}
}

// Property: shifting every event by a bounded per-event amount keeps
// MinEps within the bound (per-node order preserved by construction:
// events at one node keep their relative order when shifts are equal per
// node).
func TestMinEpsProperty(t *testing.T) {
	f := func(shifts [4]int8) bool {
		base := ta.Trace{
			ev("A", 0, ta.KindInput, 100),
			ev("B", 1, ta.KindOutput, 200),
			ev("C", 2, ta.KindInput, 300),
			ev("D", 3, ta.KindOutput, 400),
		}
		shifted := make(ta.Trace, len(base))
		var want simtime.Duration
		for i, e := range base {
			d := simtime.Duration(shifts[i])
			e.At = e.At.Add(d)
			shifted[i] = e
			if d.Abs() > want {
				want = d.Abs()
			}
		}
		got, err := MinEps(base, shifted, ByNode)
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
