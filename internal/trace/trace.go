// Package trace implements the timed-sequence relations of §2.3 as
// decision and measurement procedures:
//
//   - =_{ε,κ} (Definition 2.8): a label-preserving bijection that keeps
//     the order of actions within each class of κ and moves no action by
//     more than ε in time. The problems P_ε (Definition 2.11) are defined
//     through it with κ = the per-node action partition.
//
//   - ≤_{δ,K} (Definition 2.9): actions outside every class keep their
//     exact times and mutual order; actions within a class may shift up to
//     δ into the future, keeping their order within the class. The
//     problems P^δ (Definition 2.12) are defined through it with K = the
//     per-node output sets.
//
// Classes must be label-derivable (the same label is always in the same
// class), which holds for the paper's per-node partitions since labels
// embed the node. Under that assumption a qualifying bijection exists iff
// the positional per-class matching qualifies, so the procedures below are
// exact decisions, and the Min variants return the smallest ε (resp. δ)
// for which the traces are related.
package trace

import (
	"fmt"
	"sort"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// Classifier assigns an action to a κ-class. ok=false means the action is
// in no class (only meaningful for ≤_{δ,K}, where unclassified actions are
// the ones that must match exactly).
type Classifier func(ta.Action) (class string, ok bool)

// ByNode is the κ of Theorem 4.7's statement: one class per node, covering
// every action.
func ByNode(a ta.Action) (string, bool) { return a.Node.String(), true }

// OutputsByNode is the K of Definition 2.12: one class per node containing
// its output actions; inputs are unclassified and must match exactly.
func OutputsByNode(a ta.Action) (string, bool) {
	if a.Kind == ta.KindOutput {
		return a.Node.String(), true
	}
	return "", false
}

// group splits a trace into per-class subsequences (preserving order),
// plus the unclassified subsequence.
func group(tr ta.Trace, classOf Classifier) (map[string]ta.Trace, ta.Trace) {
	classes := make(map[string]ta.Trace)
	var rest ta.Trace
	for _, e := range tr {
		if cl, ok := classOf(e.Action); ok {
			classes[cl] = append(classes[cl], e)
		} else {
			rest = append(rest, e)
		}
	}
	return classes, rest
}

func classKeys(m1, m2 map[string]ta.Trace) []string {
	seen := make(map[string]bool, len(m1)+len(m2))
	for k := range m1 {
		seen[k] = true
	}
	for k := range m2 {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// matchClasses verifies the positional label matching per class and calls
// visit for every matched pair.
func matchClasses(c1, c2 map[string]ta.Trace, visit func(class string, e1, e2 ta.Event) error) error {
	for _, cl := range classKeys(c1, c2) {
		s1, s2 := c1[cl], c2[cl]
		if len(s1) != len(s2) {
			return fmt.Errorf("trace: class %s has %d vs %d actions", cl, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i].Action.Label() != s2[i].Action.Label() {
				return fmt.Errorf("trace: class %s position %d: %s vs %s",
					cl, i, s1[i].Action.Label(), s2[i].Action.Label())
			}
			if err := visit(cl, s1[i], s2[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// MinEps returns the smallest ε for which a1 =_{ε,κ} a2 holds, with κ
// given by classOf (which must classify every action). It returns an error
// when no ε works (the traces are not related at all).
func MinEps(a1, a2 ta.Trace, classOf Classifier) (simtime.Duration, error) {
	c1, r1 := group(a1, classOf)
	c2, r2 := group(a2, classOf)
	if len(r1) != 0 || len(r2) != 0 {
		return 0, fmt.Errorf("trace: =_ε requires κ to cover all actions; %d+%d unclassified", len(r1), len(r2))
	}
	var eps simtime.Duration
	err := matchClasses(c1, c2, func(_ string, e1, e2 ta.Event) error {
		if d := e2.At.Sub(e1.At).Abs(); d > eps {
			eps = d
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return eps, nil
}

// EqEps reports whether a1 =_{ε,κ} a2.
func EqEps(a1, a2 ta.Trace, eps simtime.Duration, classOf Classifier) (bool, error) {
	need, err := MinEps(a1, a2, classOf)
	if err != nil {
		return false, err
	}
	return need <= eps, nil
}

// MinDelta returns the smallest δ for which a1 ≤_{δ,K} a2 holds, with K
// given by classOf. Unclassified actions must occur at identical times and
// in identical mutual order; classified actions may only move into the
// future. It returns an error when no δ works.
func MinDelta(a1, a2 ta.Trace, classOf Classifier) (simtime.Duration, error) {
	c1, r1 := group(a1, classOf)
	c2, r2 := group(a2, classOf)
	if len(r1) != len(r2) {
		return 0, fmt.Errorf("trace: %d vs %d unclassified actions", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i].Action.Label() != r2[i].Action.Label() {
			return 0, fmt.Errorf("trace: unclassified position %d: %s vs %s",
				i, r1[i].Action.Label(), r2[i].Action.Label())
		}
		if r1[i].At != r2[i].At {
			return 0, fmt.Errorf("trace: unclassified action %s moved %v → %v",
				r1[i].Action.Label(), r1[i].At, r2[i].At)
		}
	}
	var delta simtime.Duration
	err := matchClasses(c1, c2, func(_ string, e1, e2 ta.Event) error {
		d := e2.At.Sub(e1.At)
		if d < 0 {
			return fmt.Errorf("trace: action %s moved %v into the past", e1.Action.Label(), -d)
		}
		if d > delta {
			delta = d
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return delta, nil
}

// LeDelta reports whether a1 ≤_{δ,K} a2.
func LeDelta(a1, a2 ta.Trace, delta simtime.Duration, classOf Classifier) (bool, error) {
	need, err := MinDelta(a1, a2, classOf)
	if err != nil {
		return false, err
	}
	return need <= delta, nil
}

// SortByTime returns the trace stably reordered into non-decreasing time
// order: the γ_α construction of Definition 4.2 (after the caller has
// substituted clock times for real times in the events).
func SortByTime(tr ta.Trace) ta.Trace {
	out := make(ta.Trace, len(tr))
	copy(out, tr)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
