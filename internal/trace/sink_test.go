package trace

import (
	"fmt"
	"testing"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

func mkEvents(n int) ta.Trace {
	tr := make(ta.Trace, n)
	for i := range tr {
		tr[i] = ta.Event{
			Action: ta.Action{Name: fmt.Sprintf("a%d", i%5), Node: ta.NodeID(i % 3), Kind: ta.KindOutput},
			At:     simtime.Time(i * 10),
			Seq:    i,
			Src:    "src",
		}
	}
	return tr
}

func TestRetainReconstructsTrace(t *testing.T) {
	events := mkEvents(7)
	var r Retain
	for _, e := range events {
		r.Observe(e)
	}
	r.Flush(simtime.Time(1000))
	if len(r.Events) != len(events) {
		t.Fatalf("retained %d events, want %d", len(r.Events), len(events))
	}
	if HashTrace(r.Events) != HashTrace(events) {
		t.Error("retained stream differs from the source trace")
	}
}

func TestHashMatchesBatch(t *testing.T) {
	events := mkEvents(9)
	h := NewHash()
	for _, e := range events {
		h.Observe(e)
	}
	if h.N != len(events) {
		t.Errorf("N = %d, want %d", h.N, len(events))
	}
	if h.Sum64() != HashTrace(events) {
		t.Error("incremental hash differs from batch HashTrace")
	}
	if NewHash().Sum64() != NewHash().Sum64() {
		t.Error("empty hashes differ")
	}
	if h.Sum64() == NewHash().Sum64() {
		t.Error("hash ignored its input")
	}
}

func TestRingKeepsTail(t *testing.T) {
	events := mkEvents(10)
	r := NewRing(4)
	for i, e := range events {
		r.Observe(e)
		if r.Total() != i+1 {
			t.Fatalf("Total = %d after %d events", r.Total(), i+1)
		}
	}
	tail := r.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail holds %d events, want 4", len(tail))
	}
	for i, e := range tail {
		if want := events[len(events)-4+i]; e.Seq != want.Seq {
			t.Errorf("tail[%d].Seq = %d, want %d (oldest-first order)", i, e.Seq, want.Seq)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	events := mkEvents(2)
	r := NewRing(5)
	for _, e := range events {
		r.Observe(e)
	}
	tail := r.Tail()
	if len(tail) != 2 || tail[0].Seq != 0 || tail[1].Seq != 1 {
		t.Errorf("partial tail = %v", tail)
	}
	if NewRing(0) == nil || len(NewRing(0).buf) != 1 {
		t.Error("NewRing(0) did not clamp capacity to 1")
	}
}
