package trace

import (
	"fmt"
	"hash/fnv"

	"psclock/internal/simtime"
	"psclock/internal/ta"
)

// This file provides the stock event sinks of the streaming pipeline
// (exec.Sink). Each satisfies the contract structurally — Observe(ta.Event)
// plus Flush(bound) — so this package needs no dependency on the executor.
//
//   - Retain reconstructs the classic retained trace, event by event.
//   - Hash folds the stream into the golden trace fingerprint without
//     retaining anything: O(1) memory regardless of run length.
//   - Ring keeps only the last N events, the post-mortem tail for failures
//     in long runs where full retention is infeasible.

// Retain is a sink that retains the full event stream as a ta.Trace,
// equivalent to running with KeepTrace and reading Trace() afterwards.
type Retain struct {
	Events ta.Trace
}

// Observe appends the event.
func (r *Retain) Observe(e ta.Event) { r.Events = append(r.Events, e) }

// Flush is a no-op: retention never discards.
func (r *Retain) Flush(simtime.Time) {}

// Hash incrementally computes the FNV-1a 64 fingerprint of the event
// stream in exactly the format of the golden-trace tests: one
// "label|kind|at|seq|src" line per event. Hashing a streamed run with
// KeepTrace disabled must yield the same sum as hashing the retained
// trace of an identical run — the differential tests rely on it.
type Hash struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
	// N counts observed events.
	N int
}

// NewHash returns an empty stream hasher.
func NewHash() *Hash { return &Hash{h: fnv.New64a()} }

// Observe folds the event into the running hash.
func (s *Hash) Observe(e ta.Event) {
	fmt.Fprintf(s.h, "%s|%d|%d|%d|%s\n", e.Action.Label(), e.Action.Kind, e.At, e.Seq, e.Src)
	s.N++
}

// Flush is a no-op: the hash carries no windowed state.
func (s *Hash) Flush(simtime.Time) {}

// Sum64 returns the fingerprint of the events observed so far.
func (s *Hash) Sum64() uint64 { return s.h.Sum64() }

// HashTrace returns the fingerprint a Hash sink would compute for a fully
// retained trace — the batch counterpart, for differential comparisons.
func HashTrace(tr ta.Trace) uint64 {
	s := NewHash()
	for _, e := range tr {
		s.Observe(e)
	}
	return s.Sum64()
}

// Ring is a bounded sink retaining only the most recent events: the
// post-mortem tail of a long streaming run.
type Ring struct {
	buf   []ta.Event
	next  int
	full  bool
	total int
}

// NewRing returns a ring keeping the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]ta.Event, n)}
}

// Observe records the event, evicting the oldest once the ring is full.
func (r *Ring) Observe(e ta.Event) {
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// Flush is a no-op: the ring's bound is its capacity, not the watermark.
func (r *Ring) Flush(simtime.Time) {}

// Total returns how many events have been observed overall.
func (r *Ring) Total() int { return r.total }

// Tail returns the retained events, oldest first, as a fresh slice.
func (r *Ring) Tail() ta.Trace {
	if !r.full {
		return append(ta.Trace(nil), r.buf[:r.next]...)
	}
	out := make(ta.Trace, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
