// Package clock provides executable realizations of the paper's clock
// subsystem (§1, §4): per-node clocks that are strictly increasing functions
// of real time and never differ from real time by more than ε — the clock
// predicate C_ε of Definition 2.5 — starting at 0 (axiom C1).
//
// Every model is a deterministic, seeded, piecewise-linear function, so the
// executor can both read the clock at any real time and invert it: the
// receive buffer R_ji,ε and the clock-model timers need "the earliest real
// time at which this clock reaches clock value c".
//
// Clock "jumps" (§1: "the clock may change in discrete jumps, so that any
// particular time value might be missed") are realized as very steep
// segments; monotonicity is preserved, and value-missing at the process
// level is the business of the MMT model's TICK granularity.
package clock

import (
	"fmt"
	"math/rand"

	"psclock/internal/simtime"
)

// den is the fixed rate denominator: rates are expressed in parts per
// million, so a rate of 1_000_000/den is perfect time.
const den = 1_000_000

// Model is one node's clock: a monotone map from real time to clock time
// satisfying C_ε. Implementations are deterministic but stateful (segments
// are generated lazily); they are not safe for concurrent use, matching the
// single-threaded executor.
type Model interface {
	// At returns the clock reading at real time t ≥ 0.
	At(t simtime.Time) simtime.Time
	// EarliestAt returns the earliest real time u with At(u) ≥ c.
	EarliestAt(c simtime.Time) simtime.Time
	// Epsilon returns the accuracy bound ε that the model guarantees.
	Epsilon() simtime.Duration
	// Name describes the model for reports.
	Name() string
}

// Factory builds one clock model per node, so different nodes can get
// differently-seeded (or differently-shaped) clocks.
type Factory func(node int) Model

// segment is one linear piece: for t in [startReal, endReal), the clock is
// startClock + (t−startReal)·num/den.
type segment struct {
	startReal  simtime.Time
	startClock simtime.Time
	num        int64 // rate numerator over den; ≥ 1 keeps the clock monotone
	dur        simtime.Duration
}

func (s segment) at(t simtime.Time) simtime.Time {
	return s.startClock.Add(t.Sub(s.startReal).Scale(s.num, den))
}

func (s segment) endReal() simtime.Time { return s.startReal.Add(s.dur) }

func (s segment) endClock() simtime.Time {
	return s.startClock.Add(s.dur.Scale(s.num, den))
}

// piecewise is the shared engine: an extendable list of segments produced
// by a generator. The generator returns the next segment's rate numerator
// and duration, given the current clock offset (clock − real).
type piecewise struct {
	name string
	eps  simtime.Duration
	segs []segment
	next func(offset simtime.Duration) (num int64, dur simtime.Duration)
}

var _ Model = (*piecewise)(nil)

func (p *piecewise) Name() string              { return p.name }
func (p *piecewise) Epsilon() simtime.Duration { return p.eps }

// extend generates segments until real time t is covered.
func (p *piecewise) extend(t simtime.Time) {
	if len(p.segs) == 0 {
		p.segs = append(p.segs, p.gen(segment{startReal: 0, startClock: 0}))
	}
	for p.segs[len(p.segs)-1].endReal() <= t {
		last := p.segs[len(p.segs)-1]
		p.segs = append(p.segs, p.gen(segment{
			startReal:  last.endReal(),
			startClock: last.endClock(),
		}))
	}
}

// gen fills in rate and duration for a segment starting at the given point,
// clamping so the clock stays inside the ±ε band (C_ε is an invariant, not
// a hope).
func (p *piecewise) gen(s segment) segment {
	offset := simtime.Duration(s.startClock - simtime.Time(s.startReal))
	num, dur := p.next(offset)
	if num < 1 {
		num = 1 // monotonicity floor
	}
	if dur < 1 {
		dur = 1
	}
	// End offset = offset + dur·(num−den)/den; clamp num so it stays in
	// [−ε, ε].
	endOff := offset + dur.Scale(num-den, den)
	if endOff > p.eps {
		// Solve offset + dur·(num−den)/den = ε for num.
		num = den + int64((p.eps-offset))*den/int64(dur)
		if num < 1 {
			num = 1
		}
	} else if endOff < -p.eps {
		num = den + int64((-p.eps-offset))*den/int64(dur)
		if num < 1 {
			num = 1
		}
	}
	s.num, s.dur = num, dur
	return s
}

func (p *piecewise) At(t simtime.Time) simtime.Time {
	if t < 0 {
		t = 0
	}
	p.extend(t)
	seg := p.find(t)
	return seg.at(t)
}

// find locates the segment covering real time t (segments are contiguous
// from 0, so binary search applies).
func (p *piecewise) find(t simtime.Time) segment {
	lo, hi := 0, len(p.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.segs[mid].startReal <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return p.segs[lo]
}

func (p *piecewise) EarliestAt(c simtime.Time) simtime.Time {
	if c <= 0 {
		return 0
	}
	// The clock reaches c no later than real time c+ε (predicate C_ε), so
	// extending to that point guarantees the target segment exists.
	p.extend(simtime.Time(int64(c) + int64(p.eps) + 1))
	// Binary search for the first segment whose end clock reaches c.
	lo, hi := 0, len(p.segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.segs[mid].endClock() >= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s := p.segs[lo]
	if s.startClock >= c {
		return s.startReal
	}
	// Smallest dt with startClock + dt·num/den ≥ c:
	// dt = ceil((c − startClock)·den/num).
	need := int64(c - s.startClock)
	dt := (need*den + s.num - 1) / s.num
	return s.startReal.Add(simtime.Duration(dt))
}

// Perfect returns the ideal clock: clock = now (ε = 0). Running a clock-model
// system with perfect clocks must reproduce the TA-model behavior exactly,
// which the tests exploit.
func Perfect() Model {
	return &piecewise{
		name: "perfect",
		eps:  0,
		next: func(simtime.Duration) (int64, simtime.Duration) {
			return den, simtime.Duration(1) << 40 // one long exact segment
		},
	}
}

// Constant returns a clock that ramps quickly to the given offset and then
// runs at perfect rate, modeling a fixed skew of |offset| ≤ ε. The ramp
// occupies the first ramp duration (default 2·|offset| when ramp ≤ 0).
func Constant(eps simtime.Duration, offset simtime.Duration) Model {
	if offset.Abs() > eps {
		panic(fmt.Sprintf("clock: offset %v exceeds ε %v", offset, eps))
	}
	ramped := false
	return &piecewise{
		name: fmt.Sprintf("constant(%v)", offset),
		eps:  eps,
		next: func(cur simtime.Duration) (int64, simtime.Duration) {
			if !ramped {
				ramped = true
				ramp := 2 * offset.Abs()
				if ramp == 0 {
					return den, simtime.Duration(1) << 40
				}
				// Reach `offset` after `ramp` real time:
				// rate = (ramp+offset)/ramp.
				return den + int64(offset)*den/int64(ramp), ramp
			}
			return den, simtime.Duration(1) << 40
		},
	}
}

// Drift returns a seeded random-walk clock: segments of duration in
// [minSeg, 2·minSeg) aiming at uniformly random offsets within the ±ε band.
// minSeg is clamped to at least 8ε so rates stay moderate.
func Drift(eps simtime.Duration, seed int64) Model {
	if eps <= 0 {
		return Perfect()
	}
	r := rand.New(rand.NewSource(seed))
	minSeg := 8 * eps
	return &piecewise{
		name: fmt.Sprintf("drift(ε=%v,seed=%d)", eps, seed),
		eps:  eps,
		next: func(cur simtime.Duration) (int64, simtime.Duration) {
			dur := minSeg + simtime.Duration(r.Int63n(int64(minSeg)))
			target := simtime.Duration(r.Int63n(2*int64(eps)+1)) - eps
			return den + int64(target-cur)*den/int64(dur), dur
		},
	}
}

// Sawtooth returns the adversarial oscillating clock: it runs slow until it
// reaches −ε, then jumps (a very steep segment of the given jump duration)
// to +ε, and repeats. period controls how long one slow descent takes.
// This is the clock most likely to expose algorithms that assume clocks
// behave smoothly.
func Sawtooth(eps simtime.Duration, period simtime.Duration) Model {
	if eps <= 0 {
		return Perfect()
	}
	if period < 4*eps {
		period = 4 * eps
	}
	jump := eps / 64
	if jump < 1 {
		jump = 1
	}
	return &piecewise{
		name: fmt.Sprintf("sawtooth(ε=%v,period=%v)", eps, period),
		eps:  eps,
		next: func(cur simtime.Duration) (int64, simtime.Duration) {
			if cur <= -eps+eps/16 {
				// Jump to +ε fast: gain (ε−cur) over `jump` real time.
				return den + int64(eps-cur)*den/int64(jump), jump
			}
			// Descend to −ε over `period`.
			return den + int64(-eps-cur)*den/int64(period), period
		},
	}
}

// Resync models an NTP-style discipline, the paper's §1 motivation: the
// clock drifts at a constant rate (losing or gaining ppm parts per
// million) between synchronization epochs `interval` apart, and at each
// epoch steps briskly back toward zero offset (a steep segment — never
// backwards, per C3). The drift rate and interval must keep the offset
// within ±ε: |ppm·interval/1e6| ≤ ε is required and enforced by the usual
// band clamping.
func Resync(eps simtime.Duration, ppm int64, interval simtime.Duration) Model {
	if eps <= 0 {
		return Perfect()
	}
	if interval < 4*eps {
		interval = 4 * eps
	}
	step := eps / 64
	if step < 1 {
		step = 1
	}
	syncing := false
	return &piecewise{
		name: fmt.Sprintf("resync(ε=%v,%dppm,%v)", eps, ppm, interval),
		eps:  eps,
		next: func(cur simtime.Duration) (int64, simtime.Duration) {
			if syncing || cur.Abs() < eps/32 {
				// Drift segment until the next sync epoch.
				syncing = false
				return den + ppm, interval
			}
			// Sync step: return to (near) zero offset over `step` time.
			syncing = true
			return den + int64(-cur)*den/int64(step), step
		},
	}
}

// Slow returns a clock pinned near the bottom of the band (clock ≈ now − ε),
// and Fast one pinned near the top (clock ≈ now + ε). A system mixing Slow
// and Fast nodes realizes the worst-case 2ε clock disagreement between
// nodes, where the buffering of §4.2 is actually exercised.
func Slow(eps simtime.Duration) Model { return Constant(eps, -eps) }

// Fast returns a clock pinned at clock ≈ now + ε. See Slow.
func Fast(eps simtime.Duration) Model { return Constant(eps, eps) }

// PerfectFactory gives every node a perfect clock.
func PerfectFactory() Factory {
	return func(int) Model { return Perfect() }
}

// DriftFactory gives node i a drifting clock seeded with seed+i.
func DriftFactory(eps simtime.Duration, seed int64) Factory {
	return func(node int) Model { return Drift(eps, seed+int64(node)) }
}

// SpreadFactory pins even nodes Fast and odd nodes Slow: the maximal
// inter-node skew adversary.
func SpreadFactory(eps simtime.Duration) Factory {
	return func(node int) Model {
		if node%2 == 0 {
			return Fast(eps)
		}
		return Slow(eps)
	}
}

// SawtoothFactory gives every node a sawtooth clock with a per-node phase
// (period scaled by node index so nodes jump at different times).
func SawtoothFactory(eps simtime.Duration, period simtime.Duration) Factory {
	return func(node int) Model {
		return Sawtooth(eps, period+simtime.Duration(node)*eps)
	}
}

// Check verifies that m satisfies the clock axioms on a sampled horizon:
// C1 (At(0) = 0), monotone non-decreasing readings (the discrete-grid form
// of C3), the clock predicate C_ε (Definition 2.5), and agreement between
// At and EarliestAt. It returns the first violation found.
func Check(m Model, horizon simtime.Time, step simtime.Duration) error {
	if step <= 0 {
		return fmt.Errorf("clock: non-positive step %v", step)
	}
	if c0 := m.At(0); c0 != 0 {
		return fmt.Errorf("clock %s: At(0) = %v, want 0 (axiom C1)", m.Name(), c0)
	}
	eps := m.Epsilon()
	var prev simtime.Time
	for t := simtime.Zero; t <= horizon; t = t.Add(step) {
		c := m.At(t)
		if c < prev {
			return fmt.Errorf("clock %s: At(%v) = %v < At(previous) = %v (axiom C3)", m.Name(), t, c, prev)
		}
		if d := simtime.Duration(c - t); d.Abs() > eps {
			return fmt.Errorf("clock %s: |At(%v) − %v| = %v > ε = %v (predicate C_ε)", m.Name(), t, t, d.Abs(), eps)
		}
		u := m.EarliestAt(c)
		if got := m.At(u); got < c {
			return fmt.Errorf("clock %s: At(EarliestAt(%v)) = %v < %v", m.Name(), c, got, c)
		}
		if u > 0 {
			if got := m.At(u - 1); got >= c {
				return fmt.Errorf("clock %s: EarliestAt(%v) = %v is not earliest (At(%v) = %v)", m.Name(), c, u, u-1, got)
			}
		}
		prev = c
	}
	return nil
}
