package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psclock/internal/simtime"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func TestPerfect(t *testing.T) {
	m := Perfect()
	for _, x := range []simtime.Time{0, 1, 1000, simtime.Time(5 * ms)} {
		if got := m.At(x); got != x {
			t.Errorf("At(%v) = %v", x, got)
		}
		if got := m.EarliestAt(x); got != x {
			t.Errorf("EarliestAt(%v) = %v", x, got)
		}
	}
	if m.Epsilon() != 0 {
		t.Error("Epsilon != 0")
	}
}

func TestCheckAllModels(t *testing.T) {
	eps := 500 * us
	horizon := simtime.Time(200 * ms)
	models := []Model{
		Perfect(),
		Constant(eps, 0),
		Constant(eps, eps),
		Constant(eps, -eps),
		Constant(eps, eps/3),
		Fast(eps),
		Slow(eps),
		Drift(eps, 1),
		Drift(eps, 42),
		Drift(eps, 12345),
		Sawtooth(eps, 10*ms),
		Sawtooth(eps, 2*eps), // period below the 4ε floor gets clamped
		Resync(eps, -200, 5*ms),
		Resync(eps, 150, 8*ms),
		Resync(eps, -800, 2*ms), // interval below the 4ε floor gets clamped
	}
	for _, m := range models {
		if err := Check(m, horizon, 137*us); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestCheckBadStep(t *testing.T) {
	if err := Check(Perfect(), 1000, 0); err == nil {
		t.Error("step 0 accepted")
	}
}

func TestConstantReachesOffset(t *testing.T) {
	eps := 1 * ms
	m := Constant(eps, eps/2)
	// After the ramp (2·|offset| = 1ms) the offset is constant.
	for _, x := range []simtime.Time{simtime.Time(5 * ms), simtime.Time(50 * ms)} {
		off := simtime.Duration(m.At(x) - x)
		if off != eps/2 {
			t.Errorf("offset at %v = %v, want %v", x, off, eps/2)
		}
	}
}

func TestConstantPanicsOutOfBand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Constant(ms, 2*ms)
}

func TestFastSlowExtremes(t *testing.T) {
	eps := 1 * ms
	f, s := Fast(eps), Slow(eps)
	at := simtime.Time(100 * ms)
	if off := simtime.Duration(f.At(at) - at); off != eps {
		t.Errorf("fast offset = %v", off)
	}
	if off := simtime.Duration(s.At(at) - at); off != -eps {
		t.Errorf("slow offset = %v", off)
	}
	// Worst-case inter-node skew is 2ε.
	if skew := simtime.Duration(f.At(at) - s.At(at)); skew != 2*eps {
		t.Errorf("skew = %v, want %v", skew, 2*eps)
	}
}

func TestSawtoothOscillates(t *testing.T) {
	eps := 1 * ms
	m := Sawtooth(eps, 8*ms)
	sawLow, sawHigh := false, false
	for x := simtime.Zero; x <= simtime.Time(100*ms); x = x.Add(50 * us) {
		off := simtime.Duration(m.At(x) - x)
		if off <= -eps/2 {
			sawLow = true
		}
		if off >= eps/2 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Errorf("sawtooth never visited both band halves (low=%v high=%v)", sawLow, sawHigh)
	}
}

func TestDriftDeterministic(t *testing.T) {
	a, b := Drift(ms, 7), Drift(ms, 7)
	for x := simtime.Zero; x <= simtime.Time(50*ms); x = x.Add(997 * simtime.Nanosecond * 50) {
		if a.At(x) != b.At(x) {
			t.Fatalf("same seed diverged at %v: %v vs %v", x, a.At(x), b.At(x))
		}
	}
	c := Drift(ms, 8)
	same := true
	for x := simtime.Time(10 * ms); x <= simtime.Time(50*ms); x = x.Add(simtime.Duration(ms)) {
		if a.At(x) != c.At(x) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical clocks")
	}
}

func TestEarliestAtInverse(t *testing.T) {
	models := []Model{Perfect(), Fast(ms), Slow(ms), Drift(ms, 3), Sawtooth(ms, 10*ms)}
	r := rand.New(rand.NewSource(1))
	for _, m := range models {
		for i := 0; i < 500; i++ {
			c := simtime.Time(r.Int63n(int64(100 * ms)))
			u := m.EarliestAt(c)
			if got := m.At(u); got < c {
				t.Errorf("%s: At(EarliestAt(%v)) = %v < c", m.Name(), c, got)
			}
			if u > 0 {
				if got := m.At(u - 1); got >= c {
					t.Errorf("%s: EarliestAt(%v)=%v not minimal", m.Name(), c, u)
				}
			}
		}
	}
}

func TestEarliestAtNonPositive(t *testing.T) {
	m := Drift(ms, 9)
	if m.EarliestAt(0) != 0 || m.EarliestAt(-5) != 0 {
		t.Error("EarliestAt(≤0) != 0")
	}
}

func TestAtNegativeClamped(t *testing.T) {
	m := Drift(ms, 9)
	if m.At(-100) != m.At(0) {
		t.Error("At(<0) != At(0)")
	}
}

// Property: for any drift seed and any two ordered sample points, the clock
// is monotone and within the band.
func TestDriftBandProperty(t *testing.T) {
	f := func(seed int64, a, b uint32) bool {
		eps := 300 * us
		m := Drift(eps, seed)
		x, y := simtime.Time(a%uint32(50*ms)), simtime.Time(b%uint32(50*ms))
		if x > y {
			x, y = y, x
		}
		cx, cy := m.At(x), m.At(y)
		if cx > cy {
			return false
		}
		return simtime.Duration(cx-x).Abs() <= eps && simtime.Duration(cy-y).Abs() <= eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFactories(t *testing.T) {
	eps := 1 * ms
	pf := PerfectFactory()
	if pf(0).Epsilon() != 0 {
		t.Error("PerfectFactory not perfect")
	}
	df := DriftFactory(eps, 100)
	if df(0).Name() == df(1).Name() {
		t.Error("DriftFactory seeds not distinct")
	}
	sf := SpreadFactory(eps)
	at := simtime.Time(50 * ms)
	if sf(0).At(at) <= at || sf(1).At(at) >= at {
		t.Error("SpreadFactory not spread")
	}
	swf := SawtoothFactory(eps, 10*ms)
	if err := Check(swf(2), simtime.Time(50*ms), 113*us); err != nil {
		t.Error(err)
	}
}

func TestZeroEpsilonDegradesToPerfect(t *testing.T) {
	if Drift(0, 1).Name() != "perfect" {
		t.Error("Drift(0) not perfect")
	}
	if Sawtooth(0, 0).Name() != "perfect" {
		t.Error("Sawtooth(0) not perfect")
	}
	if Resync(0, 100, ms).Name() != "perfect" {
		t.Error("Resync(0) not perfect")
	}
}

func TestResyncDriftsAndCorrects(t *testing.T) {
	eps := 1 * ms
	// A slow clock (−500ppm) over a 10ms epoch loses 5µs per epoch and
	// then snaps back toward zero offset.
	m := Resync(eps, -500, 10*ms)
	sawNegative, sawRecovered := false, false
	var prev simtime.Time
	for x := simtime.Zero; x <= simtime.Time(200*ms); x = x.Add(100 * us) {
		c := m.At(x)
		if c < prev {
			t.Fatalf("clock regressed at %v", x)
		}
		prev = c
		off := simtime.Duration(c - x)
		if off < -2*us {
			sawNegative = true
		}
		if sawNegative && off.Abs() < us {
			sawRecovered = true
		}
	}
	if !sawNegative || !sawRecovered {
		t.Errorf("resync clock never drifted (%v) or never recovered (%v)", sawNegative, sawRecovered)
	}
}
