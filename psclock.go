// Package psclock is a reproduction of "Designing Algorithms for
// Distributed Systems with Partially Synchronized Clocks" (Chaudhuri,
// Gawlick, Lynch; PODC 1993) as an executable Go library.
//
// The paper's pipeline, operational here end to end:
//
//  1. Write a distributed algorithm once against perfect real time — the
//     timed-automaton programming model of §3 (the Algorithm interface).
//  2. Run it unchanged in a system whose nodes only have ε-accurate
//     clocks (BuildClocked): the §4 transformation C(A,ε) plus the send
//     and receive buffers of Figure 2. Theorem 4.7: every property P the
//     algorithm had still holds up to an ε perturbation of action times
//     (P_ε), on links widened from [d1,d2] to [max(d1−2ε,0), d2+2ε].
//  3. Run it in a system that additionally has finite step time ℓ and a
//     clock visible only through discrete TICKs (BuildMMT): the §5
//     transformation M(A^c,ε,ℓ). Theorems 5.1/5.2: outputs shift at most
//     kℓ+2ε+3ℓ into the future.
//
// The paper's application (§6) is included: the linearizable read-write
// register algorithms L and S, the ε-superlinearizability strengthening
// that makes plain linearizability survive the clock model (Theorem 6.5),
// and a reconstruction of the Mavronicolas [10] baseline they beat. A
// complete linearizability checker, adversarial clock/delay/step models,
// trace-relation deciders (=_{ε,κ}, ≤_{δ,K}), workload generators, and the
// experiment harness regenerating every quantitative claim round out the
// library.
//
// This package is a facade re-exporting the library's public surface; the
// implementation lives in the internal packages (internal/core is the
// paper's contribution; the rest are its substrates).
package psclock

import (
	"psclock/internal/channel"
	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/exec"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/spec"
	"psclock/internal/stats"
	"psclock/internal/ta"
	"psclock/internal/trace"
	"psclock/internal/workload"
)

// Simulated time.
type (
	// Time is an instant of simulated time (nanoseconds from the start).
	Time = simtime.Time
	// Duration is a span of simulated time.
	Duration = simtime.Duration
	// Interval is a closed duration range, e.g. link delay bounds [d1,d2].
	Interval = simtime.Interval
)

// Re-exported duration units and sentinels.
const (
	Nanosecond  = simtime.Nanosecond
	Microsecond = simtime.Microsecond
	Millisecond = simtime.Millisecond
	Second      = simtime.Second
	Never       = simtime.Never
)

// NewInterval returns the closed interval [lo, hi].
func NewInterval(lo, hi Duration) Interval { return simtime.NewInterval(lo, hi) }

// ParseDuration parses "3us", "1.5ms", "2s".
func ParseDuration(s string) (Duration, error) { return simtime.ParseDuration(s) }

// Automaton vocabulary.
type (
	// NodeID identifies a node of the distributed system.
	NodeID = ta.NodeID
	// Action is one labeled transition of the composed system.
	Action = ta.Action
	// Event is an action-time pair of a recorded trace.
	Event = ta.Event
	// Trace is a timed sequence of events.
	Trace = ta.Trace
	// Automaton is an executable timed automaton component.
	Automaton = ta.Automaton
	// System is the discrete-event executor composing automata.
	System = exec.System
)

// Algorithms and system models (the paper's contribution).
type (
	// Algorithm is a distributed algorithm written against perfect time
	// (the §3 programming model).
	Algorithm = core.Algorithm
	// Context is the runtime an Algorithm callback sees.
	Context = core.Context
	// AlgorithmFactory builds each node's algorithm instance.
	AlgorithmFactory = core.AlgorithmFactory
	// SystemConfig describes the distributed system to build.
	SystemConfig = core.Config
	// Net is a built system with handles to its components.
	Net = core.Net
	// ClockStamp pairs an action with its real and clock times (γ'_α).
	ClockStamp = core.ClockStamp
	// EmittedStamp records an MMT node's output emission.
	EmittedStamp = core.EmittedStamp
	// StepPolicy resolves MMT step-time nondeterminism.
	StepPolicy = core.StepPolicy
)

// BuildTimed assembles D_T: the timed-automaton model system (§3.3).
func BuildTimed(cfg SystemConfig, f AlgorithmFactory) *Net { return core.BuildTimed(cfg, f) }

// BuildClocked assembles D_C: the clock model system (§4.1), applying the
// paper's first transformation to every node.
func BuildClocked(cfg SystemConfig, f AlgorithmFactory) *Net { return core.BuildClocked(cfg, f) }

// BuildMMT assembles D_M: the MMT model system (§5.2), applying both
// transformations.
func BuildMMT(cfg SystemConfig, f AlgorithmFactory) *Net { return core.BuildMMT(cfg, f) }

// MMT step policies.
var (
	// LazySteps always waits the full ℓ (the worst-case adversary).
	LazySteps = core.LazySteps
	// EagerSteps steps at ℓ/8.
	EagerSteps = core.EagerSteps
	// UniformSteps picks gaps uniformly in (0, ℓ].
	UniformSteps = core.UniformSteps
)

// Clocks satisfying the C_ε predicate.
type (
	// ClockModel is one node's clock: monotone, |clock−now| ≤ ε.
	ClockModel = clock.Model
	// ClockFactory builds one clock per node.
	ClockFactory = clock.Factory
)

// Clock model constructors.
var (
	// PerfectClock is clock = now.
	PerfectClock = clock.Perfect
	// DriftClock is a seeded random walk within the ±ε band.
	DriftClock = clock.Drift
	// SawtoothClock oscillates adversarially across the band.
	SawtoothClock = clock.Sawtooth
	// ResyncClock models an NTP-style drift-and-resync discipline.
	ResyncClock = clock.Resync
	// FastClock pins clock ≈ now+ε; SlowClock pins clock ≈ now−ε.
	FastClock = clock.Fast
	// SlowClock pins clock ≈ now−ε.
	SlowClock = clock.Slow
	// PerfectClocks gives every node a perfect clock.
	PerfectClocks = clock.PerfectFactory
	// DriftClocks gives node i a drifting clock seeded seed+i.
	DriftClocks = clock.DriftFactory
	// SpreadClocks pins even nodes fast and odd nodes slow (max skew).
	SpreadClocks = clock.SpreadFactory
	// SawtoothClocks gives every node a phase-shifted sawtooth clock.
	SawtoothClocks = clock.SawtoothFactory
	// CheckClock verifies the clock axioms on a sampled horizon.
	CheckClock = clock.Check
)

// Message delay policies.
type DelayPolicy = channel.DelayPolicy

// Delay policy constructors.
var (
	// MinDelay always delivers at d1; MaxDelay at d2.
	MinDelay = channel.MinDelay
	// MaxDelay always delivers at d2.
	MaxDelay = channel.MaxDelay
	// UniformDelay picks uniformly within [d1, d2].
	UniformDelay = channel.UniformDelay
	// SpreadDelay alternates d1/d2 to maximize reordering.
	SpreadDelay = channel.SpreadDelay
	// BimodalDelay picks d1 with probability p, d2 otherwise.
	BimodalDelay = channel.BimodalDelay
)

// The register application (§6).
type (
	// RegisterParams are the constants of algorithms L and S.
	RegisterParams = register.Params
	// RegisterValue is a written value (unique per execution).
	RegisterValue = register.Value
	// RegisterLS is the shared implementation of algorithms L and S.
	RegisterLS = register.LS
	// Baseline is the reconstruction of the [10] clock-model algorithm.
	Baseline = register.Baseline
)

// Register constructors and helpers.
var (
	// NewRegisterL returns algorithm L (Lemma 6.1).
	NewRegisterL = register.NewL
	// NewRegisterS returns algorithm S (Lemma 6.2 / Theorem 6.5).
	NewRegisterS = register.NewS
	// RegisterFactory adapts L/S constructors to an AlgorithmFactory.
	RegisterFactory = register.Factory
	// NewBaseline returns the [10] baseline reconstruction.
	NewBaseline = register.NewBaseline
	// BaselineFactory adapts it to an AlgorithmFactory.
	BaselineFactory = register.BaselineFactory
	// RegisterHistory extracts the operation history from a trace.
	RegisterHistory = register.History
	// RegisterLatencies splits completed-operation latencies by kind.
	RegisterLatencies = register.Latencies
	// InitialValue is v_0.
	InitialValue = register.Initial
)

// Linearizability checking.
type (
	// Op is one register operation of a history.
	Op = linearize.Op
	// CheckOptions tunes the placement constraints.
	CheckOptions = linearize.Options
	// CheckResult reports a check's outcome.
	CheckResult = linearize.Result
)

// Operation kinds.
const (
	Read  = linearize.Read
	Write = linearize.Write
)

// Checkers.
var (
	// CheckLinearizable decides plain linearizability (problem P, §6.1).
	CheckLinearizable = linearize.CheckLinearizable
	// CheckSuperLinearizable decides ε-superlinearizability (problem Q, §6.2).
	CheckSuperLinearizable = linearize.CheckSuperLinearizable
	// CheckLinearizableEps decides P_ε membership (Definition 2.11).
	CheckLinearizableEps = linearize.CheckEps
	// CheckHistory is the fully general entry point.
	CheckHistory = linearize.Check
	// CheckSequentiallyConsistent decides the weaker Attiya-Welch
	// condition (no real-time constraint; see experiment E14).
	CheckSequentiallyConsistent = linearize.CheckSequentiallyConsistent
	// Shrink reduces a violating history to a minimal counterexample.
	Shrink = linearize.Shrink
	// ShrinkObject is Shrink for generic object histories.
	ShrinkObject = linearize.ShrinkObject
)

// Trace relations (§2.3).
var (
	// MinEps returns the least ε with a1 =_{ε,κ} a2 (Definition 2.8).
	MinEps = trace.MinEps
	// EqEps decides a1 =_{ε,κ} a2.
	EqEps = trace.EqEps
	// MinDelta returns the least δ with a1 ≤_{δ,K} a2 (Definition 2.9).
	MinDelta = trace.MinDelta
	// LeDelta decides a1 ≤_{δ,K} a2.
	LeDelta = trace.LeDelta
	// ByNode is the per-node class partition κ.
	ByNode = trace.ByNode
	// OutputsByNode is the per-node output partition K.
	OutputsByNode = trace.OutputsByNode
)

// Generalized shared-memory objects (§6's closing remark).
type (
	// ObjectSpec is a sequential object specification (canonical string
	// states), driving both the replicas and the generic checker.
	ObjectSpec = object.Spec
	// ObjectAlg is the generalized algorithm S/L for one node.
	ObjectAlg = object.Alg
	// ObjectOp is one operation of a generic object history.
	ObjectOp = linearize.GOp
	// ObjectModel is the checker-side sequential specification.
	ObjectModel = linearize.Model
	// ObjectClientConfig describes an object client population.
	ObjectClientConfig = object.ClientConfig
	// Counter, GSet, MaxRegister, RegisterSpec are ready-made specs.
	Counter = object.Counter
	// GSet is a grow-only set spec.
	GSet = object.GSet
	// MaxRegister keeps the maximum of raised values.
	MaxRegister = object.MaxRegister
	// RegisterSpec is the paper's own register as an ObjectSpec.
	RegisterSpec = object.Register
	// KVStore is a keyed map of registers (a configuration store).
	KVStore = object.KVStore
)

// Object constructors and helpers.
var (
	// NewObjectS returns the generalized algorithm S for a spec.
	NewObjectS = object.NewS
	// NewObjectL returns the generalized algorithm L (timed model only).
	NewObjectL = object.NewL
	// ObjectFactory adapts an object constructor to an AlgorithmFactory.
	ObjectFactory = object.Factory
	// ObjectHistory extracts a generic history from a trace.
	ObjectHistory = object.History
	// AttachObjectClients adds one object client per node.
	AttachObjectClients = object.Attach
	// CheckObject decides linearizability against a sequential spec.
	CheckObject = linearize.CheckObject
	// CounterOps, GSetOps, MaxOps, RegisterOps generate workloads.
	CounterOps = object.CounterOps
	// GSetOps generates grow-set workloads.
	GSetOps = object.GSetOps
	// MaxOps generates max-register workloads.
	MaxOps = object.MaxOps
	// RegisterOps generates unique-write register workloads.
	RegisterOps = object.RegisterOps
	// KVOps generates configuration-store workloads.
	KVOps = object.KVOps
)

// Failure detection (the §1 motivation; see experiment E15).
type (
	// DetectorParams configures the heartbeat failure detector.
	DetectorParams = detector.Params
	// Detector is the heartbeat failure detector algorithm.
	Detector = detector.Detector
	// Suspicion is one SUSPECT event extracted from a trace.
	Suspicion = detector.Suspicion
)

// Detector constructors and helpers.
var (
	// NewDetector returns a heartbeat failure detector.
	NewDetector = detector.New
	// DetectorFactory adapts it to an AlgorithmFactory.
	DetectorFactory = detector.Factory
	// SafeTimeoutTA is the tight timed-model timeout π+(d2−d1).
	SafeTimeoutTA = detector.SafeTimeoutTA
	// SafeTimeoutClock adds the clock model's 4ε margin.
	SafeTimeoutClock = detector.SafeTimeoutClock
	// Suspicions extracts SUSPECT events from a trace.
	Suspicions = detector.Suspicions
)

// Failure adversaries (§7.3 explored; see experiment E12).
var (
	// WithCrash wraps an automaton to crash-stop at a given time.
	WithCrash = core.WithCrash
	// CrashNode installs a crash-stop wrapper on a node of a built Net.
	CrashNode = core.CrashNode
)

// Problems (Definitions 2.10–2.12) and the conformance harness.
type (
	// Problem decides membership of a visible trace in tseq(P), with the
	// P_ε relaxation built in.
	Problem = spec.Problem
	// Adversary is one resolution of the models' nondeterminism.
	Adversary = spec.Adversary
	// Verdict is the outcome of one adversary's conformance check.
	Verdict = spec.Verdict
	// LinearizableProblem is the register problem P of §6.1.
	LinearizableProblem = spec.Linearizable
	// SuperLinearizableProblem is the problem Q of §6.2.
	SuperLinearizableProblem = spec.SuperLinearizable
	// ObjectLinearizableProblem checks against a sequential object spec.
	ObjectLinearizableProblem = spec.ObjectLinearizable
	// MutualExclusionProblem is the resource problem of the TDMA example.
	MutualExclusionProblem = spec.MutualExclusion
	// ResponsiveProblem is a real-time latency specification (see E16).
	ResponsiveProblem = spec.Responsive
)

// Conformance harness helpers.
var (
	// StandardAdversaries is the boundary-case ensemble the experiments use.
	StandardAdversaries = spec.StandardAdversaries
	// Solves checks a system family against a problem over an ensemble.
	Solves = spec.Solves
	// SolvesEps checks against the relaxed problem P_ε (Theorem 4.7).
	SolvesEps = spec.SolvesEps
	// AllOK summarizes a verdict list.
	AllOK = spec.AllOK
)

// Workloads and reporting.
type (
	// WorkloadConfig describes a closed-loop client population.
	WorkloadConfig = workload.Config
	// Client is a closed-loop client automaton.
	Client = workload.Client
	// ScriptOp is one pre-scheduled open-loop operation.
	ScriptOp = workload.ScriptOp
	// Summary holds sample statistics of durations.
	Summary = stats.Summary
)

// Workload and stats helpers.
var (
	// AttachClients adds one closed-loop client per node.
	AttachClients = workload.Attach
	// MakeScript generates a fixed open-loop schedule.
	MakeScript = workload.MakeScript
	// AttachScripted adds one scripted client per node.
	AttachScripted = workload.AttachScripted
	// Summarize computes duration statistics.
	Summarize = stats.Summarize
	// Timeline renders a per-node ASCII lane chart of a trace.
	Timeline = stats.Timeline
)
