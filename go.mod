module psclock

go 1.22
