// Tradeoff: sweep the c knob of the transformed register algorithm S and
// print the read/write latency tradeoff line of §6.1/§6.3, together with
// the [10] baseline's flat costs — the series behind experiment E4's
// crossover: ours reads faster below c = 3u−δ, the baseline above, and
// ours wins on combined cost everywhere.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func measure(factory core.AlgorithmFactory, eps simtime.Duration, bounds simtime.Interval, seed int64) (read, write simtime.Duration, lin bool, err error) {
	net := core.BuildClocked(core.Config{
		N:      3,
		Bounds: bounds,
		Seed:   seed,
		Clocks: clock.SpreadFactory(eps),
	}, factory)
	clients := workload.Attach(net, workload.Config{
		Ops:        25,
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       seed + 1,
		Stagger:    300 * us,
	})
	if _, err = net.Sys.RunQuiet(simtime.Time(30 * simtime.Second)); err != nil {
		return 0, 0, false, err
	}
	for _, c := range clients {
		if c.Done != 25 {
			return 0, 0, false, fmt.Errorf("%s finished %d/25", c.Name(), c.Done)
		}
	}
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		return 0, 0, false, err
	}
	reads, writes := register.Latencies(ops)
	lin = linearize.CheckLinearizable(ops, register.Initial.String()).OK
	return stats.MaxDuration(reads), stats.MaxDuration(writes), lin, nil
}

func main() {
	eps := 400 * us
	u := 2 * eps
	bounds := simtime.NewInterval(1*ms, 3*ms)

	baseR, baseW, baseLin, err := measure(register.BaselineFactory(u, bounds.Hi), eps, bounds, 7)
	if err != nil {
		log.Fatal(err)
	}

	tb := stats.NewTable("c", "S read", "S write", "S combined", "S lin.", "who reads faster")
	for c := simtime.Duration(0); c <= 4*u; c += u / 2 {
		p := register.Params{C: c, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
		r, w, lin, err := measure(register.Factory(register.NewS, p), eps, bounds, 7)
		if err != nil {
			log.Fatal(err)
		}
		who := "S"
		if r > baseR {
			who = "baseline"
		}
		oks := "yes"
		if !lin {
			oks = "NO"
		}
		tb.AddRow(c.String(), r.String(), w.String(), (r + w).String(), oks, who)
	}
	fmt.Printf("ε = %v, u = 2ε = %v, d = %v\n", eps, u, bounds)
	fmt.Printf("baseline [10]: read %v, write %v, combined %v, linearizable %v\n",
		baseR, baseW, baseR+baseW, baseLin)
	fmt.Printf("paper's crossover: c = 3u − δ = %v\n\n", 3*u-10*us)
	fmt.Print(tb.String())
}
