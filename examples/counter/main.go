// Counter: the §6 technique generalized to another shared-memory object,
// as the paper's full version promises. A distributed counter with blind
// ADD updates and GET queries runs through the same clock-model
// transformation as the register — the algorithm is written once against
// perfect time — and the history is verified against the counter's
// sequential specification with the generic linearizability checker.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
)

func main() {
	const (
		ms = simtime.Millisecond
		us = simtime.Microsecond
	)
	eps := 500 * us
	bounds := simtime.NewInterval(1*ms, 3*ms)
	params := register.Params{
		C:       500 * us,
		Delta:   10 * us,
		D2:      bounds.Hi + 2*eps,
		Epsilon: eps,
	}

	net := core.BuildClocked(core.Config{
		N:      4,
		Bounds: bounds,
		Seed:   9,
		Clocks: clock.SawtoothFactory(eps, 8*ms),
	}, object.Factory(object.NewS, func() object.Spec { return object.Counter{} }, params))

	clients := object.Attach(net, object.ClientConfig{
		Ops:     25,
		Think:   simtime.NewInterval(0, 2*ms),
		Gen:     object.CounterOps(0.5),
		Seed:    2,
		Stagger: 250 * us,
	})
	if _, err := net.Sys.RunQuiet(simtime.Time(30 * simtime.Second)); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range clients {
		total += c.Done
	}
	fmt.Printf("%d operations completed at %d nodes under sawtooth clocks (ε = %v)\n",
		total, net.N, eps)

	ops, err := object.History(net.Sys.Trace().Visible())
	if err != nil {
		log.Fatal(err)
	}
	r := linearize.CheckObject(ops, object.Counter{}, linearize.Options{Initial: object.Counter{}.Init()})
	if !r.OK {
		log.Fatalf("counter history NOT linearizable: %s", r.Reason)
	}
	fmt.Printf("counter history linearizable ✓ (%d states searched)\n", r.States)

	// Show the final convergent value: replay all updates sequentially.
	state := object.Counter{}.Init()
	for _, o := range ops {
		if o.Result == "" && !o.Pending() {
			state, _ = object.Counter{}.Apply(state, o.Op)
		}
	}
	fmt.Printf("final counter value (all %d ops applied): %s\n", total, state)
}
