// TDMA: the paper's §7.1 design technique on a second problem — time-slot
// mutual exclusion for a shared resource.
//
// In the timed-automaton programming model the algorithm is trivial: node
// i uses the resource during slots k·σ .. (k+1)·σ with k ≡ i (mod n); no
// guard gap is needed because everyone agrees on the time. Run unchanged
// in the clock model, adjacent slot owners can overlap in real time by up
// to 2ε — the property "mutual exclusion" is *not* closed under the P_ε
// perturbation, so Theorem 4.7 only gives us P_ε, not P.
//
// The fix is the paper's second technique: design a stronger problem Q
// with Q_ε ⊆ P — here, slots with a guard gap of 2ε between release and
// the next acquire. This program measures real-time overlaps for both
// variants under maximally skewed clocks.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/simtime"
	"psclock/internal/spec"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

// slotted is the TDMA algorithm, written against perfect time (§3 model).
type slotted struct {
	sigma  simtime.Duration // slot width
	guard  simtime.Duration // gap left idle at the end of each slot
	rounds int              // how many of its slots each node uses
}

type slotKey struct {
	k       int
	acquire bool
}

var _ core.Algorithm = (*slotted)(nil)

func (s *slotted) Start(ctx core.Context) {
	first := int(ctx.ID())
	ctx.SetTimer(simtime.Zero.Add(simtime.Duration(first)*s.sigma), slotKey{k: first, acquire: true})
}

func (s *slotted) OnInput(core.Context, string, any) {}

func (s *slotted) OnMessage(core.Context, ta.NodeID, any) {}

func (s *slotted) OnTimer(ctx core.Context, key any) {
	sk := key.(slotKey)
	start := simtime.Zero.Add(simtime.Duration(sk.k) * s.sigma)
	if sk.acquire {
		ctx.Output("ACQUIRE", sk.k)
		ctx.SetTimer(start.Add(s.sigma-s.guard), slotKey{k: sk.k, acquire: false})
		return
	}
	ctx.Output("RELEASE", sk.k)
	s.rounds--
	if s.rounds > 0 {
		next := sk.k + ctx.N()
		ctx.SetTimer(simtime.Zero.Add(simtime.Duration(next)*s.sigma), slotKey{k: next, acquire: true})
	}
}

func runTDMA(model string, eps, guard simtime.Duration) (int, simtime.Duration) {
	cfg := core.Config{
		N:      3,
		Bounds: simtime.NewInterval(1*ms, 1*ms), // links unused by this algorithm
		Seed:   5,
		Clocks: clock.SpreadFactory(eps),
	}
	factory := func(ta.NodeID, int) core.Algorithm {
		return &slotted{sigma: 4 * ms, guard: guard, rounds: 8}
	}
	var net *core.Net
	if model == "timed" {
		net = core.BuildTimed(cfg, factory)
	} else {
		net = core.BuildClocked(cfg, factory)
	}
	if _, err := net.Sys.RunQuiet(simtime.Time(simtime.Second)); err != nil {
		log.Fatal(err)
	}
	n, worst, err := spec.MutualExclusion{}.Overlaps(net.Sys.Trace().Visible())
	if err != nil {
		log.Fatal(err)
	}
	return n, worst
}

func main() {
	eps := 500 * us
	tb := stats.NewTable("model", "guard", "overlaps", "worst overlap", "mutual exclusion")
	rows := []struct {
		model string
		guard simtime.Duration
	}{
		{"timed", 0},
		{"clock", 0},
		{"clock", eps},
		{"clock", 2 * eps},
	}
	for _, r := range rows {
		n, worst := runTDMA(r.model, eps, r.guard)
		ok := "holds"
		if n > 0 {
			ok = "VIOLATED"
		}
		tb.AddRow(r.model, r.guard.String(), fmt.Sprint(n), worst.String(), ok)
	}
	fmt.Printf("TDMA slots, σ = 4ms, ε = %v, maximally skewed clocks\n\n", eps)
	fmt.Print(tb.String())
	fmt.Println("\nguard 0 in the timed model is safe; the same program in the clock")
	fmt.Println("model overlaps by up to 2ε; a 2ε guard (the Q with Q_ε ⊆ P of §7.1)")
	fmt.Println("restores mutual exclusion without re-proving anything in the clock model.")
}
