// Pipeline: one algorithm, three worlds. The register algorithm S is
// written once against perfect time (§3); this program runs it unchanged
// in all three system models —
//
//	D_T  the timed-automaton model (perfect time),
//	D_C  the clock model (ε-accurate clocks, Theorem 4.7),
//	D_M  the MMT model (clock + step time ℓ + TICK granularity,
//	     Theorem 5.2)
//
// — and shows what each layer of realism costs: the measured latencies,
// whether linearizability survives, and in D_M how far outputs shifted
// relative to their simulated clock times (bounded by kℓ+2ε+3ℓ).
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func main() {
	eps := 300 * us
	ell := 50 * us
	bounds := simtime.NewInterval(1*ms, 3*ms)
	kHeadroom := 24 * ell

	// One parameter set generous enough for the harshest model (Theorem
	// 5.2's d'2 = d2 + 2ε + kℓ), so the identical algorithm runs in all
	// three.
	p := register.Params{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps + kHeadroom, Epsilon: eps}
	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}
	factory := register.Factory(register.NewS, p)

	tb := stats.NewTable("model", "read p99", "read max", "write p99", "write max", "linearizable", "max output shift")
	for _, model := range []string{"timed", "clock", "mmt"} {
		cfg := core.Config{
			N:      3,
			Bounds: bounds,
			Seed:   11,
			Clocks: clock.DriftFactory(eps, 23),
			Ell:    ell,
		}
		var net *core.Net
		switch model {
		case "timed":
			net = core.BuildTimed(cfg, factory)
		case "clock":
			net = core.BuildClocked(cfg, factory)
		case "mmt":
			net = core.BuildMMT(cfg, factory)
		}
		clients := workload.Attach(net, workload.Config{
			Ops:        25,
			Think:      simtime.NewInterval(0, 2*ms),
			WriteRatio: 0.4,
			Seed:       3,
			Stagger:    300 * us,
		})
		done := func() bool {
			for _, c := range clients {
				if c.Done != 25 {
					return false
				}
			}
			return true
		}
		for net.Sys.Now() < simtime.Time(30*simtime.Second) && !done() {
			if err := net.Sys.Run(net.Sys.Now().Add(20 * ms)); err != nil {
				log.Fatal(err)
			}
		}
		if !done() {
			log.Fatalf("%s: clients did not finish", model)
		}
		ops, err := register.History(net.Sys.Trace().Visible())
		if err != nil {
			log.Fatal(err)
		}
		reads, writes := register.Latencies(ops)
		rs, ws := stats.Summarize(reads), stats.Summarize(writes)
		lin := linearize.CheckLinearizable(ops, register.Initial.String()).OK
		linS := "yes"
		if !lin {
			linS = "NO"
		}
		shift := "-"
		if model == "mmt" {
			var worst simtime.Duration
			for _, n := range net.MMT {
				for _, st := range n.Stamps() {
					if d := st.Real.Sub(simtime.Time(st.SimClock)); d > worst {
						worst = d
					}
				}
			}
			shift = worst.String()
		}
		tb.AddRow(model, rs.P99.String(), rs.Max.String(), ws.P99.String(), ws.Max.String(), linS, shift)
	}
	fmt.Printf("algorithm S, ε = %v, ℓ = %v, d = %v, lazy MMT steps\n", eps, ell, bounds)
	fmt.Printf("Theorem 5.1 output-shift budget (k from d'2 headroom): kℓ+2ε+3ℓ = %v\n\n",
		kHeadroom+2*eps+3*ell)
	fmt.Print(tb.String())
}
