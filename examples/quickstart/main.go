// Quickstart: build a 3-node distributed system whose clocks are only
// ε-accurate, run the paper's transformed register algorithm S on it, and
// verify that the resulting history is linearizable (Theorem 6.5) — all in
// simulated time, deterministically.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/workload"
)

func main() {
	const (
		ms = simtime.Millisecond
		us = simtime.Microsecond
	)

	// The deployed network: message delays in [1ms, 3ms], clocks within
	// ε = 500µs of real time, drifting adversarially within that band.
	eps := 500 * us
	bounds := simtime.NewInterval(1*ms, 3*ms)

	// The algorithm is written against perfect time (the paper's §3
	// programming model) and designed for the *widened* delay bound
	// d'2 = d2 + 2ε of Theorem 4.7. The knob c trades read latency
	// against write latency.
	params := register.Params{
		C:       700 * us,
		Delta:   10 * us,
		D2:      bounds.Hi + 2*eps,
		Epsilon: eps,
	}
	if err := params.Validate(); err != nil {
		log.Fatal(err)
	}

	// Build D_C: each node runs C(S_i, ε) with send/receive buffers, on
	// clock-tagged edges — the Section 4 transformation, assembled.
	net := core.BuildClocked(core.Config{
		N:      3,
		Bounds: bounds,
		Seed:   42,
		Clocks: clock.DriftFactory(eps, 7),
	}, register.Factory(register.NewS, params))

	// Closed-loop clients: one per node, 30 operations each, respecting
	// the §6.1 alternation condition.
	clients := workload.Attach(net, workload.Config{
		Ops:        30,
		Think:      simtime.NewInterval(0, 2*ms),
		WriteRatio: 0.4,
		Seed:       1,
		Stagger:    300 * us,
	})

	// Run to quiescence.
	if _, err := net.Sys.RunQuiet(simtime.Time(10 * simtime.Second)); err != nil {
		log.Fatal(err)
	}
	for _, c := range clients {
		fmt.Printf("%s completed %d operations\n", c.Name(), c.Done)
	}

	// Extract the operation history from the visible trace and verify
	// plain linearizability — the property Theorem 6.5 promises even
	// though no node ever saw real time.
	ops, err := register.History(net.Sys.Trace().Visible())
	if err != nil {
		log.Fatal(err)
	}
	reads, writes := register.Latencies(ops)
	fmt.Printf("reads : %v (paper: %v in clock time)\n",
		stats.Summarize(reads), 2*eps+params.Delta+params.C)
	fmt.Printf("writes: %v (paper: %v in clock time)\n",
		stats.Summarize(writes), bounds.Hi+2*eps-params.C)

	r := linearize.CheckLinearizable(ops, register.Initial.String())
	if !r.OK {
		log.Fatalf("history is NOT linearizable: %s", r.Reason)
	}
	fmt.Println("history is linearizable ✓ (Theorem 6.5)")
}
