// Heartbeat: failure detection with partially synchronized clocks — the
// very first use of time the paper's introduction names. The detector is
// written once against perfect time; this program shows what clock skew
// does to it:
//
//  1. the timed-model timeout π+(d2−d1) is perfectly accurate in D_T;
//  2. the same timeout in D_C false-suspects live nodes under adversarial
//     clocks (heartbeat gaps stretch by up to 4ε);
//  3. adding the 4ε margin (the §7.1 strengthening, applied to timeouts)
//     restores accuracy — and a genuinely crashed node is still detected
//     promptly.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/detector"
	"psclock/internal/simtime"
	"psclock/internal/stats"
	"psclock/internal/ta"
)

const (
	ms = simtime.Millisecond
	us = simtime.Microsecond
)

func runOnce(model string, timeout simtime.Duration, eps simtime.Duration,
	bounds simtime.Interval, crashAt simtime.Time) (falseSus int, detect []simtime.Duration) {
	p := detector.Params{Period: 5 * ms, Timeout: timeout, Heartbeats: 30}
	if crashAt > 0 {
		p.Heartbeats = 0
	}
	cfg := core.Config{N: 3, Bounds: bounds, Seed: 11, Clocks: clock.SawtoothFactory(eps, 8*ms)}
	var net *core.Net
	if model == "timed" {
		net = core.BuildTimed(cfg, detector.Factory(p))
	} else {
		net = core.BuildClocked(cfg, detector.Factory(p))
	}
	if crashAt > 0 {
		if _, err := core.CrashNode(net, 2, crashAt); err != nil {
			log.Fatal(err)
		}
	}
	if err := net.Sys.Run(simtime.Time(200 * ms)); err != nil {
		log.Fatal(err)
	}
	lastBeat := simtime.Time(simtime.Duration(p.Heartbeats) * p.Period)
	for _, s := range detector.Suspicions(net.Sys.Trace()) {
		switch {
		case crashAt > 0 && s.Of == ta.NodeID(2) && s.At.After(crashAt):
			detect = append(detect, s.At.Sub(crashAt))
		case p.Heartbeats == 0 || s.At.Before(lastBeat):
			falseSus++
		}
	}
	return falseSus, detect
}

func main() {
	bounds := simtime.NewInterval(500*us, 1500*us)
	eps := 800 * us
	period := 5 * ms
	tight := detector.SafeTimeoutTA(period, bounds)
	safe := detector.SafeTimeoutClock(period, bounds, eps)

	tb := stats.NewTable("configuration", "timeout", "false suspicions")
	f1, _ := runOnce("timed", tight, eps, bounds, 0)
	tb.AddRow("D_T, tight timeout π+(d2−d1)", tight.String(), fmt.Sprint(f1))
	f2, _ := runOnce("clock", tight, eps, bounds, 0)
	tb.AddRow("D_C, same tight timeout", tight.String(), fmt.Sprint(f2))
	f3, _ := runOnce("clock", safe, eps, bounds, 0)
	tb.AddRow("D_C, +4ε margin", safe.String(), fmt.Sprint(f3))

	fmt.Printf("heartbeats every %v, links %v, sawtooth clocks with ε = %v\n\n", period, bounds, eps)
	fmt.Print(tb.String())

	_, detect := runOnce("clock", safe, eps, bounds, simtime.Time(50*ms))
	fmt.Printf("\nwith node n2 crashed at 50ms (safe timeout): detected by %d peers, latencies %v\n",
		len(detect), stats.Summarize(detect))
	fmt.Println("\nthe tight timeout is sound where it was designed and unsound one model down;")
	fmt.Println("4ε of margin — the §7.1 technique applied to timeouts — restores accuracy.")
}
