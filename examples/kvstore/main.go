// KVStore: a replicated configuration store on five nodes whose clocks
// are disciplined by an NTP-style resync loop (the paper's §1 motivation:
// "capable of accuracies in the order of a millisecond"). Puts and
// deletes are blind updates, gets are keyed queries — the blind-update /
// query object class of the generalized §6 algorithm — so the whole store
// is linearizable in the clock model with put cost d2+2ε−c and get cost
// 2ε+δ+c, and no node ever reads real time.
package main

import (
	"fmt"
	"log"

	"psclock/internal/clock"
	"psclock/internal/core"
	"psclock/internal/linearize"
	"psclock/internal/object"
	"psclock/internal/register"
	"psclock/internal/simtime"
	"psclock/internal/stats"
)

func main() {
	const (
		ms = simtime.Millisecond
		us = simtime.Microsecond
	)
	eps := 1 * ms // NTP-grade accuracy
	bounds := simtime.NewInterval(2*ms, 8*ms)
	params := register.Params{
		C:       1 * ms,
		Delta:   20 * us,
		D2:      bounds.Hi + 2*eps,
		Epsilon: eps,
	}

	// Each node's clock drifts at a different rate and resyncs on its own
	// schedule, all within ±ε.
	clocks := func(node int) clock.Model {
		rates := []int64{-400, 250, -150, 500, -300}
		return clock.Resync(eps, rates[node%len(rates)], simtime.Duration(20+node*7)*ms)
	}

	net := core.BuildClocked(core.Config{
		N:      5,
		Bounds: bounds,
		Seed:   31,
		Clocks: clocks,
	}, object.Factory(object.NewS, func() object.Spec { return object.KVStore{} }, params))

	clients := object.Attach(net, object.ClientConfig{
		Ops:     30,
		Think:   simtime.NewInterval(0, 5*ms),
		Gen:     object.KVOps(0.5, 4),
		Seed:    8,
		Stagger: 500 * us,
	})
	if _, err := net.Sys.RunQuiet(simtime.Time(60 * simtime.Second)); err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, c := range clients {
		total += c.Done
	}

	ops, err := object.History(net.Sys.Trace().Visible())
	if err != nil {
		log.Fatal(err)
	}
	var gets, puts []simtime.Duration
	for _, o := range ops {
		if o.Pending() {
			continue
		}
		if o.Result != "" {
			gets = append(gets, o.Res.Sub(o.Inv))
		} else {
			puts = append(puts, o.Res.Sub(o.Inv))
		}
	}
	fmt.Printf("%d ops at 5 nodes, resync clocks (ε = %v), links %v\n", total, eps, bounds)
	fmt.Printf("gets: %v (paper: %v)\n", stats.Summarize(gets), 2*eps+params.Delta+params.C)
	fmt.Printf("puts: %v (paper: %v)\n", stats.Summarize(puts), params.D2-params.C)

	r := linearize.CheckObject(ops, object.KVStore{}, linearize.Options{Initial: object.KVStore{}.Init()})
	if !r.OK {
		log.Fatalf("KV history NOT linearizable: %s", r.Reason)
	}
	fmt.Printf("KV history linearizable ✓ (%d states searched)\n", r.States)

	// Final store contents, replayed sequentially.
	state := object.KVStore{}.Init()
	for _, o := range ops {
		if o.Result == "" && !o.Pending() {
			state, _ = object.KVStore{}.Apply(state, o.Op)
		}
	}
	fmt.Printf("final store: %q\n", state)
}
