package psclock_test

import (
	"testing"

	"psclock"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build D_C, run a workload, check linearizability.
func TestFacadeEndToEnd(t *testing.T) {
	const (
		ms = psclock.Millisecond
		us = psclock.Microsecond
	)
	eps := 400 * us
	bounds := psclock.NewInterval(1*ms, 3*ms)
	p := psclock.RegisterParams{C: 500 * us, Delta: 10 * us, D2: bounds.Hi + 2*eps, Epsilon: eps}
	net := psclock.BuildClocked(psclock.SystemConfig{
		N:      3,
		Bounds: bounds,
		Seed:   5,
		Clocks: psclock.SpreadClocks(eps),
	}, psclock.RegisterFactory(psclock.NewRegisterS, p))
	clients := psclock.AttachClients(net, psclock.WorkloadConfig{
		Ops:        15,
		Think:      psclock.NewInterval(0, 2*ms),
		WriteRatio: 0.5,
		Seed:       2,
	})
	if _, err := net.Sys.RunQuiet(psclock.Time(10 * psclock.Second)); err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if c.Done != 15 {
			t.Fatalf("%s: %d/15", c.Name(), c.Done)
		}
	}
	ops, err := psclock.RegisterHistory(net.Sys.Trace().Visible())
	if err != nil {
		t.Fatal(err)
	}
	if r := psclock.CheckLinearizable(ops, psclock.InitialValue.String()); !r.OK {
		t.Fatalf("not linearizable: %s", r.Reason)
	}
	reads, writes := psclock.RegisterLatencies(ops)
	if len(reads)+len(writes) != 45 {
		t.Errorf("latencies %d+%d != 45", len(reads), len(writes))
	}
	if s := psclock.Summarize(reads); s.N != len(reads) {
		t.Error("Summarize miscounted")
	}
}

// TestFacadeClockModels sanity-checks the re-exported clock constructors
// against the clock axioms.
func TestFacadeClockModels(t *testing.T) {
	eps := 200 * psclock.Microsecond
	horizon := psclock.Time(20 * psclock.Millisecond)
	for _, m := range []psclock.ClockModel{
		psclock.PerfectClock(),
		psclock.DriftClock(eps, 3),
		psclock.SawtoothClock(eps, 4*psclock.Millisecond),
		psclock.FastClock(eps),
		psclock.SlowClock(eps),
	} {
		if err := psclock.CheckClock(m, horizon, 97*psclock.Microsecond); err != nil {
			t.Error(err)
		}
	}
}

// TestFacadeTraceRelations exercises the re-exported §2.3 deciders.
func TestFacadeTraceRelations(t *testing.T) {
	a := psclock.Trace{
		{Action: psclock.Action{Name: "X", Node: 0, Peer: -1, Kind: 2}, At: 10},
	}
	b := psclock.Trace{
		{Action: psclock.Action{Name: "X", Node: 0, Peer: -1, Kind: 2}, At: 14},
	}
	eps, err := psclock.MinEps(a, b, psclock.ByNode)
	if err != nil || eps != 4 {
		t.Errorf("MinEps = %v, %v", eps, err)
	}
	d, err := psclock.MinDelta(a, b, psclock.OutputsByNode)
	if err != nil || d != 4 {
		t.Errorf("MinDelta = %v, %v", d, err)
	}
}

// TestFacadeDetectorAndSC exercises the failure-detector and
// sequential-consistency exports.
func TestFacadeDetectorAndSC(t *testing.T) {
	bounds := psclock.NewInterval(500*psclock.Microsecond, 1500*psclock.Microsecond)
	eps := 500 * psclock.Microsecond
	p := psclock.DetectorParams{
		Period:     5 * psclock.Millisecond,
		Timeout:    psclock.SafeTimeoutClock(5*psclock.Millisecond, bounds, eps),
		Heartbeats: 10,
	}
	net := psclock.BuildClocked(psclock.SystemConfig{
		N: 3, Bounds: bounds, Seed: 2, Clocks: psclock.DriftClocks(eps, 3),
	}, psclock.DetectorFactory(p))
	if err := net.Sys.Run(psclock.Time(80 * psclock.Millisecond)); err != nil {
		t.Fatal(err)
	}
	lastBeat := psclock.Time(psclock.Duration(p.Heartbeats) * p.Period)
	for _, s := range psclock.Suspicions(net.Sys.Trace()) {
		if s.At.Before(lastBeat) {
			t.Fatalf("false suspicion: %+v", s)
		}
	}

	ops := []psclock.Op{
		{Node: 0, Kind: psclock.Write, Value: "a", Inv: 0, Res: 10},
		{Node: 1, Kind: psclock.Read, Value: "v0", Inv: 20, Res: 30},
	}
	if psclock.CheckLinearizable(ops, "v0").OK {
		t.Fatal("stale read linearizable")
	}
	if !psclock.CheckSequentiallyConsistent(ops, "v0").OK {
		t.Fatal("stale read not SC")
	}
	if small := psclock.Shrink(ops, psclock.CheckOptions{Initial: "v0"}); len(small) != 2 {
		t.Errorf("shrunk to %d", len(small))
	}
}

// TestFacadeSolvesHarness exercises the conformance harness exports.
func TestFacadeSolvesHarness(t *testing.T) {
	advs := psclock.StandardAdversaries(200*psclock.Microsecond, 1)[:2]
	verdicts := psclock.Solves(psclock.LinearizableProblem{}, advs,
		func(psclock.Adversary) (psclock.Trace, error) { return nil, nil })
	if ok, _ := psclock.AllOK(verdicts); !ok {
		t.Fatal("empty traces should pass vacuously")
	}
}
