# Build/verify entry points. Tier-1 is the gate every change must keep
# green; tier-2 adds vet and the race detector (the parallel experiment
# harness makes -race meaningful); bench regenerates BENCH_results.json.

GO ?= go

.PHONY: all build test tier1 tier2 bench microbench json compare stream-bench stream-shard-bench live-smoke live-bench live-pipe-smoke live-pipe-bench live-tier-smoke live-tier-bench fleet-smoke fleet-bench

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Regenerate BENCH_results.json: per-experiment wall time, pass/fail,
# E10's executor ops/sec and memory metrics, the long-horizon streaming
# pipeline section (-stream), the checker-throughput sub-sections
# (sequential vs 4-way sharded vs ε-approximate verification), and the
# sharded executor's GOMAXPROCS × shards scaling curve (-shardsweep).
json:
	$(GO) run ./cmd/pscbench -json -stream -checkshards 4 -approx -shardsweep

# Regression gate: rerun all experiments and diff wall time, ops/sec, and
# memory (peak heap, allocs/op — gated upward) against the committed
# BENCH_results.json; exits nonzero past 20% in the regressing direction,
# or when a scaling-curve cell that beat sequential in the baseline
# drops below 1.0×.
compare:
	$(GO) run ./cmd/pscbench -compare BENCH_results.json -stream -checkshards 4 -approx -shardsweep

# Long-horizon streaming pipeline measurement alone: 10^6 operations
# verified online in O(window) memory, peak heap and allocs/op printed.
stream-bench:
	$(GO) run ./cmd/pscbench -stream -run E10

# Checker-throughput comparison: capture one multi-register command
# stream, replay it through the sequential, 4-way sharded, and
# ε-approximate checkers, gating verdict equality always and the 4x
# speedup whenever GOMAXPROCS and the op count make it meaningful.
stream-shard-bench:
	$(GO) run ./cmd/pscbench -stream -checkshards 4 -approx -run E10

# Experiment-level benchmarks (E1–E16 plus substrate micro-benchmarks).
bench:
	$(GO) test -run XXX -bench . -benchtime=1x .

# Scheduler/dispatch micro-benchmarks: indexed fast path vs the linear
# differential oracle.
microbench:
	$(GO) test -run XXX -bench 'BenchmarkSchedulerStep|BenchmarkDispatchRouting' ./internal/exec/

# Time-boxed live-runtime smoke: serve the register over loopback TCP
# under jittered clocks, drive a short closed-loop load, and require zero
# online-linearizability violations and a clean shutdown. CI runs this.
live-smoke:
	$(GO) run ./cmd/pscserve -duration 2s -rate 120 -clock jitter -slack 3ms -v

# Pipelined high-throughput smoke: open-loop load across 32 register
# instances with sharded verification, requiring zero violations, zero
# recorder drops, and a conservative completed-ops floor (the headline
# run does ~24k ops/s on one idle core; the floor tolerates a slow,
# shared CI host). CI runs this time-boxed.
live-pipe-smoke:
	$(GO) run ./cmd/pscserve -duration 3s -pipeline 8 -registers 32 -clients 4 -rate 1500 \
		-clock jitter -slack 5ms -checkshards 4 -gogc 1000 -minops 9000

# Closed-loop latency baseline: one op in flight per client, recorded as
# the live_closed section of BENCH_results.json (compared by
# `make compare` via pscbench -compare). This is the seed run's shape:
# per-op latency with no pipelining to hide it.
live-bench:
	$(GO) run ./cmd/pscserve -duration 8s -rate 200 -clock jitter -slack 2ms -seed 1 \
		-json -jsonsection live_closed

# Pipelined throughput headline: the live section of BENCH_results.json.
# Open-loop load (6 clients × 16 in flight) over 64 register instances on
# one TCP connection per node pair, every operation verified online by
# the exact sharded checker — ops_per_sec gates downward in
# `make compare`, recorder drops gate at zero.
live-pipe-bench:
	$(GO) run ./cmd/pscserve -duration 8s -pipeline 16 -registers 64 -clients 6 -rate 4000 \
		-clock jitter -slack 5ms -checkshards 4 -gogc 1000 -seed 1 -json -jsonsection live

# Mixed-tier smoke: half the registers serve algorithm S (linearizable),
# half algorithm L (sequentially consistent, reads 2ε cheaper), each tier
# verified online against its own specification. ε is widened so the
# tier discount clears wall-clock noise; the ops floor keeps a wedged
# tier from passing silently. CI runs this.
live-tier-smoke:
	$(GO) run ./cmd/pscserve -duration 2s -rate 120 -registers 8 -tiers mix:0.5 \
		-clock jitter -eps 2ms -slack 3ms -minops 100

# Multi-process fleet smoke: a control plane spawns one pscnode OS
# process per node, drives client load, and injects all four fault
# kinds — SIGKILL (auto-replaced), a network partition, a delay spike
# past d2, and a clock step past ε — each classified against its
# scripted expectation. Exits nonzero on any expectation mismatch, any
# checker violation not explained by a lossy fault, any recorder drop,
# or a failed replacement. CI runs this time-boxed.
fleet-smoke:
	$(GO) run ./cmd/pscfleet -duration 5s -rate 120 \
		-chaos "crash@700ms:1; partition@2s+700ms:0-2; delay@3.2s+500ms:2+15ms; clockstep@4.2s+400ms:0+6ms"

# Seeded fleet chaos benchmark: the live_fleet section of
# BENCH_results.json. The default 6-fault script (every kind, one
# tolerated and one flagged variant where the kind has a band) over a
# 12 s load; `make compare` gates ops/s downward, the verdict sticky,
# recorder drops at zero, and every chaos outcome against its scripted
# expectation.
fleet-bench:
	$(GO) run ./cmd/pscfleet -duration 12s -seed 1 -json BENCH_results.json

# Mixed-tier benchmark: the live_tiered section of BENCH_results.json.
# Seeded closed-loop load over 8 registers split lin/seq, recording
# per-tier latency percentiles and the measured seq read discount —
# `make compare` gates ops/s downward, the verdict sticky, and the
# discount against the configured ε.
live-tier-bench:
	$(GO) run ./cmd/pscserve -duration 8s -rate 200 -registers 8 -tiers mix:0.5 \
		-clock jitter -eps 2ms -slack 2ms -seed 1 -json -jsonsection live_tiered
