# Build/verify entry points. Tier-1 is the gate every change must keep
# green; tier-2 adds vet and the race detector (the parallel experiment
# harness makes -race meaningful); bench regenerates BENCH_results.json.

GO ?= go

.PHONY: all build test tier1 tier2 bench microbench json compare

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

tier1: build test

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Regenerate BENCH_results.json: per-experiment wall time, pass/fail, and
# E10's executor ops/sec and events/sec metrics.
json:
	$(GO) run ./cmd/pscbench -json

# Regression gate: rerun all experiments and diff wall time and ops/sec
# against the committed BENCH_results.json; exits nonzero past 20% drop.
compare:
	$(GO) run ./cmd/pscbench -compare BENCH_results.json

# Experiment-level benchmarks (E1–E16 plus substrate micro-benchmarks).
bench:
	$(GO) test -run XXX -bench . -benchtime=1x .

# Scheduler/dispatch micro-benchmarks: indexed fast path vs the linear
# differential oracle.
microbench:
	$(GO) test -run XXX -bench 'BenchmarkSchedulerStep|BenchmarkDispatchRouting' ./internal/exec/
